// End-to-end tests for the scheduling daemon: the full HTTP surface
// driven through internal/client, cache effectiveness and
// byte-identical replies, singleflight coalescing, 429 backpressure,
// client-disconnect cancellation (asserted on the obs trace), and
// graceful drain.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersched"
	"clustersched/internal/client"
	"clustersched/internal/ddgio"
	"clustersched/internal/obs"
	"clustersched/internal/server"
)

const dotDDG = `loop dotproduct
node 0 load a[i]
node 1 load b[i]
node 2 fmul
node 3 fadd s
edge 0 2 0
edge 1 2 0
edge 2 3 0
edge 3 3 1
end
`

const threeLoopDDG = dotDDG + `loop chain
node 0 load x[i]
node 1 alu
node 2 store y[i]
edge 0 1 0
edge 1 2 0
end
loop recur
node 0 fadd acc
node 1 fmul
edge 0 1 0
edge 1 0 1
end
`

// bigLoopDDG is a heavily unrolled dot product: large enough that one
// pipeline run dominates the HTTP round trip, so the cold/cached
// benchmark ratio measures the cache, not connection overhead.
func bigLoopDDG(tb testing.TB) string {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a[i]")
	b := g.AddNode(clustersched.OpLoad, "b[i]")
	m := g.AddNode(clustersched.OpFMul, "")
	s := g.AddNode(clustersched.OpFAdd, "s")
	g.AddEdge(a, m, 0)
	g.AddEdge(b, m, 0)
	g.AddEdge(m, s, 0)
	g.AddEdge(s, s, 1)
	big := g.Unroll(16)
	var buf bytes.Buffer
	if err := ddgio.Write(&buf, "big", big); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

func newTestServer(tb testing.TB, cfg server.Config) (*client.Client, *httptest.Server) {
	ts := httptest.NewServer(server.New(cfg))
	tb.Cleanup(ts.Close)
	return client.New(ts.URL, ts.Client()), ts
}

func TestScheduleEndToEndAndCacheByteIdentical(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	req := server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1"}
	cold, xcache, err := c.ScheduleRaw(ctx, req)
	if err != nil {
		t.Fatalf("cold schedule: %v", err)
	}
	if xcache != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", xcache)
	}
	warm, xcache, err := c.ScheduleRaw(ctx, req)
	if err != nil {
		t.Fatalf("warm schedule: %v", err)
	}
	if xcache != "hit" {
		t.Errorf("warm X-Cache = %q, want hit", xcache)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached response is not byte-identical to the cold one:\ncold: %s\nwarm: %s", cold, warm)
	}

	var resp server.ScheduleResponse
	if err := json.Unmarshal(warm, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Name != "dotproduct" || resp.Machine != "gp:2:2:1" {
		t.Errorf("identity = %q on %q", resp.Name, resp.Machine)
	}
	if resp.II < resp.MII || resp.MII < 1 {
		t.Errorf("II=%d MII=%d out of order", resp.II, resp.MII)
	}
	if resp.Kernel == "" || resp.Stages < 1 {
		t.Errorf("kernel/stages missing: stages=%d", resp.Stages)
	}
	if len(resp.ClusterOf) != len(resp.CycleOf) || len(resp.ClusterOf) < 4 {
		t.Errorf("annotation tables %d/%d entries", len(resp.ClusterOf), len(resp.CycleOf))
	}
	if len(resp.Diagnostics) != 0 {
		t.Errorf("valid schedule audited %d findings: %v", len(resp.Diagnostics), resp.Diagnostics)
	}
	if resp.Stats.IICandidates < 1 {
		t.Errorf("stats empty: %+v", resp.Stats)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", st.Cache)
	}
	if st.Scheduled != 1 {
		t.Errorf("scheduled = %d, want 1 (second request must not re-run the pipeline)", st.Scheduled)
	}
	if st.Requests < 2 {
		t.Errorf("requests = %d, want >= 2", st.Requests)
	}
	if st.Sched.IICandidates != resp.Stats.IICandidates {
		t.Errorf("aggregated sched stats %d candidates, want %d", st.Sched.IICandidates, resp.Stats.IICandidates)
	}
}

// TestScheduleBySource drives the loop-language path and checks that
// differently spelled but identical requests share one cache entry
// only when their canonical content matches.
func TestScheduleBySource(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	resp, cached, err := c.Schedule(ctx, server.ScheduleRequest{
		Source:  "loop dot { s = s + a[i]*b[i] }",
		Machine: "gp:2:2:1",
	})
	if err != nil {
		t.Fatalf("schedule from source: %v", err)
	}
	if cached {
		t.Error("first request reported cached")
	}
	if resp.Name != "dot" || resp.II < 1 {
		t.Errorf("resp = %+v", resp)
	}

	// Same source on a different machine must be a different entry.
	_, cached, err = c.Schedule(ctx, server.ScheduleRequest{
		Source:  "loop dot { s = s + a[i]*b[i] }",
		Machine: "gp:4:4:2",
	})
	if err != nil {
		t.Fatalf("schedule on wider machine: %v", err)
	}
	if cached {
		t.Error("different machine served from cache")
	}
}

func TestBatchFanOutAndCache(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	req := server.BatchRequest{DDG: threeLoopDDG, Machine: "gp:2:2:1"}
	cold, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(cold.Items) != 3 {
		t.Fatalf("%d items, want 3", len(cold.Items))
	}
	names := []string{"dotproduct", "chain", "recur"}
	for i, item := range cold.Items {
		if item.Name != names[i] {
			t.Errorf("item %d name %q, want %q (input order must be preserved)", i, item.Name, names[i])
		}
		if item.Error != "" {
			t.Errorf("item %d failed: %s", i, item.Error)
			continue
		}
		var r server.ScheduleResponse
		if err := json.Unmarshal(item.Result, &r); err != nil {
			t.Errorf("item %d result not a ScheduleResponse: %v", i, err)
		} else if r.II < 1 {
			t.Errorf("item %d II = %d", i, r.II)
		}
	}

	warm, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	if warm.CacheHits != 3 {
		t.Errorf("warm batch cache hits = %d, want 3", warm.CacheHits)
	}
	for i := range warm.Items {
		if !warm.Items[i].Cached {
			t.Errorf("warm item %d not served from cache", i)
		}
		if !bytes.Equal(warm.Items[i].Result, cold.Items[i].Result) {
			t.Errorf("warm item %d differs from cold result", i)
		}
	}

	// The single-loop endpoint must share the batch's cache entries.
	_, xcache, err := c.ScheduleRaw(ctx, server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
	if err != nil {
		t.Fatalf("schedule after batch: %v", err)
	}
	if xcache != "hit" {
		t.Errorf("schedule after batch X-Cache = %q, want hit (shared entries)", xcache)
	}
}

// TestCompileEndpoint drives the whole-translation-unit endpoint:
// full kernels in input order, per-loop cache entries shared across
// overlapping translation units, and byte-identical cached replies.
func TestCompileEndpoint(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	tu := "loop dot { s = s + a[i]*b[i] }\nloop ax { y[i] = 2*x[i] + y[i] }\n"
	req := server.CompileRequest{Source: tu, Machine: "gp:2:2:1", StageSched: true, Validate: true}
	cold, err := c.Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(cold.Items) != 2 || cold.Scheduled != 2 || cold.Failed != 0 {
		t.Fatalf("cold compile: %d items, scheduled %d, failed %d", len(cold.Items), cold.Scheduled, cold.Failed)
	}
	names := []string{"dot", "ax"}
	for i, item := range cold.Items {
		if item.Name != names[i] {
			t.Errorf("item %d name %q, want %q (input order)", i, item.Name, names[i])
		}
		var r server.CompileResult
		if err := json.Unmarshal(item.Result, &r); err != nil {
			t.Fatalf("item %d result: %v", i, err)
		}
		if r.II < r.MII || r.MII < 1 || r.Kernel == "" || r.Factor < 1 || len(r.RegsPerCluster) != 2 {
			t.Errorf("item %d incomplete: %+v", i, r)
		}
	}

	// The same unit again: every loop from the cache, byte-identical.
	warm, err := c.Compile(ctx, req)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if warm.CacheHits != 2 {
		t.Errorf("warm cache hits = %d, want 2", warm.CacheHits)
	}
	for i := range warm.Items {
		if !warm.Items[i].Cached {
			t.Errorf("warm item %d not cached", i)
		}
		if !bytes.Equal(warm.Items[i].Result, cold.Items[i].Result) {
			t.Errorf("warm item %d differs from cold result", i)
		}
	}

	// An overlapping unit reuses the shared loop's entry and compiles
	// only the new loop.
	overlap := server.CompileRequest{
		Source:     "loop dot { s = s + a[i]*b[i] }\nloop sum { t = t + a[i] }\n",
		Machine:    "gp:2:2:1",
		StageSched: true,
		Validate:   true,
	}
	mixed, err := c.Compile(ctx, overlap)
	if err != nil {
		t.Fatalf("overlapping compile: %v", err)
	}
	if mixed.CacheHits != 1 || !mixed.Items[0].Cached || mixed.Items[1].Cached {
		t.Errorf("overlap caching: hits=%d cached=%v/%v, want exactly the shared loop",
			mixed.CacheHits, mixed.Items[0].Cached, mixed.Items[1].Cached)
	}
	if !bytes.Equal(mixed.Items[0].Result, cold.Items[0].Result) {
		t.Error("shared loop's cached body differs across translation units")
	}

	// Different compile flags are different cache identities.
	plain, err := c.Compile(ctx, server.CompileRequest{Source: tu, Machine: "gp:2:2:1"})
	if err != nil {
		t.Fatalf("plain compile: %v", err)
	}
	if plain.CacheHits != 0 {
		t.Errorf("different compile flags hit the cache %d times", plain.CacheHits)
	}

	// Malformed source fails the unit up front, like any compiler.
	var apiErr *client.APIError
	if _, err := c.Compile(ctx, server.CompileRequest{Source: "loop bad {", Machine: "gp:2:2:1"}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Errorf("malformed source returned %v, want 422", err)
	}
}

func TestLintEndpoint(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	clean, err := c.Lint(ctx, server.LintRequest{Source: "loop d { s = s + a[i]*b[i] }", Machine: "gp:2:2:1"})
	if err != nil {
		t.Fatalf("lint clean: %v", err)
	}
	if clean.Errors != 0 {
		t.Errorf("clean input reported %d errors: %v", clean.Errors, clean.Diagnostics)
	}

	// A zero-distance self-dependence is a classic DDG005.
	broken, err := c.Lint(ctx, server.LintRequest{DDG: "loop bad\nnode 0 alu\nedge 0 0 0\nend\n"})
	if err != nil {
		t.Fatalf("lint broken: %v", err)
	}
	if broken.Errors == 0 {
		t.Fatal("broken DDG linted clean")
	}
	found := false
	for _, d := range broken.Diagnostics {
		if d.Code == "DDG005" {
			found = true
		}
	}
	if !found {
		t.Errorf("no DDG005 in %v", broken.Diagnostics)
	}
}

func TestRequestErrors(t *testing.T) {
	c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	cases := []struct {
		name   string
		req    server.ScheduleRequest
		status int
	}{
		{"no machine", server.ScheduleRequest{DDG: dotDDG}, http.StatusBadRequest},
		{"bad machine", server.ScheduleRequest{DDG: dotDDG, Machine: "warp:9"}, http.StatusBadRequest},
		{"bad variant", server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1", Variant: "psychic"}, http.StatusBadRequest},
		{"no loop", server.ScheduleRequest{Machine: "gp:2:2:1"}, http.StatusUnprocessableEntity},
		{"both payloads", server.ScheduleRequest{DDG: dotDDG, Source: "loop d { s = s + a[i] }", Machine: "gp:2:2:1"}, http.StatusUnprocessableEntity},
		{"multi loop", server.ScheduleRequest{DDG: threeLoopDDG, Machine: "gp:2:2:1"}, http.StatusUnprocessableEntity},
		{"invalid ddg", server.ScheduleRequest{DDG: "loop z\nnode 0 alu\nedge 0 0 0\nend\n", Machine: "gp:2:2:1"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		_, _, err := c.Schedule(ctx, tc.req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Errorf("%s: err = %v, want APIError", tc.name, err)
			continue
		}
		if apiErr.Status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, apiErr.Status, tc.status, apiErr.ErrorResponse.Error)
		}
	}

	// Unknown fields are rejected, so typos do not silently change
	// cache identity.
	resp, err := http.Post(c.BaseURL()+"/v1/schedule", "application/json",
		strings.NewReader(`{"machine":"gp:2:2:1","ddg":"x","machnie":"oops"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestBackpressure admits one request, blocks it inside the pipeline,
// and checks the next one bounces with 429 without waiting.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	observer := obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.KindPhaseBegin && e.Phase == obs.PhaseMII {
			once.Do(func() { <-gate })
		}
	})
	c, _ := newTestServer(t, server.Config{MaxInflight: 1, Observer: observer})
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, _, err := c.Schedule(ctx, server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
		firstDone <- err
	}()

	// Wait until the first request is inside the pipeline (inflight=1).
	deadline := time.After(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatalf("statsz: %v", err)
		}
		if st.Inflight == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("first request never became in-flight")
		case <-time.After(5 * time.Millisecond):
		}
	}

	_, _, err := c.Schedule(ctx, server.ScheduleRequest{DDG: dotDDG, Machine: "gp:4:4:2", Name: "other"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("second request err = %v, want 429", err)
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("gated request failed after release: %v", err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", st.Rejected)
	}
}

// TestClientDisconnectCancelsSearch is the acceptance scenario: a
// client that goes away mid-request must abort the II escalation loop.
// The trace observer cancels the client's context the moment the MII
// phase opens, then parks the scheduling goroutine long enough for the
// disconnect to propagate; if cancellation reaches the search, the run
// dies before trying a single II candidate — which the trace proves,
// since any completed search announces at least one.
func TestClientDisconnectCancelsSearch(t *testing.T) {
	collector := &obs.Collector{}
	cancelc := make(chan context.CancelFunc, 1)
	var once sync.Once
	observer := obs.ObserverFunc(func(e obs.Event) {
		collector.Event(e)
		if e.Kind == obs.KindPhaseBegin && e.Phase == obs.PhaseMII {
			once.Do(func() {
				(<-cancelc)()
				// Park inside the pipeline while the disconnect travels
				// client -> TCP -> server -> request context.
				time.Sleep(500 * time.Millisecond)
			})
		}
	})
	c, _ := newTestServer(t, server.Config{Observer: observer})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelc <- cancel

	_, _, err := c.Schedule(ctx, server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}

	// Wait for the server side to finish unwinding.
	deadline := time.After(5 * time.Second)
	for {
		st, serr := c.Stats(context.Background())
		if serr != nil {
			t.Fatalf("statsz: %v", serr)
		}
		if st.Inflight == 0 {
			if st.Scheduled != 0 {
				t.Errorf("scheduled = %d after disconnect, want 0 (pipeline must not complete)", st.Scheduled)
			}
			if st.Cache.Entries != 0 {
				t.Errorf("cache entries = %d, want 0 (canceled runs must not be cached)", st.Cache.Entries)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("request still in flight long after disconnect")
		case <-time.After(10 * time.Millisecond):
		}
	}

	if got := collector.Count(obs.KindIICandidate); got != 0 {
		t.Errorf("trace shows %d II candidates after disconnect, want 0 (escalation loop must abort)", got)
	}
	ended := 0
	for _, e := range collector.Events() {
		if e.Kind == obs.KindPhaseEnd && e.Phase == obs.PhaseSched && e.OK {
			ended++
		}
	}
	if ended != 0 {
		t.Errorf("trace shows %d successful scheduling phases after disconnect", ended)
	}
}

// TestGracefulDrain checks http.Server.Shutdown semantics through our
// handler, as clusterd uses on SIGTERM: an in-flight schedule finishes
// and is answered even though the listener has already closed.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	observer := obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.KindPhaseBegin && e.Phase == obs.PhaseMII {
			once.Do(func() { <-gate })
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(server.Config{Observer: observer})}
	go srv.Serve(ln)

	c := client.New("http://"+ln.Addr().String(), nil)
	reqDone := make(chan error, 1)
	go func() {
		resp, _, err := c.Schedule(context.Background(), server.ScheduleRequest{DDG: dotDDG, Machine: "gp:2:2:1"})
		if err == nil && resp.II < 1 {
			err = fmt.Errorf("bad response: %+v", resp)
		}
		reqDone <- err
	}()

	// Wait for the request to reach the pipeline.
	deadline := time.After(5 * time.Second)
	for {
		st, serr := c.Stats(context.Background())
		if serr == nil && st.Inflight == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("request never became in-flight")
		case <-time.After(5 * time.Millisecond):
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the gated request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(150 * time.Millisecond):
	}

	close(gate)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// benchSchedule drives one request through a running test server.
func benchSchedule(b *testing.B, c *client.Client, req server.ScheduleRequest) {
	b.Helper()
	_, _, err := c.ScheduleRaw(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerCold schedules a distinct (never-cached) large loop
// per iteration: every request pays the full pipeline.
func BenchmarkServerCold(b *testing.B) {
	c, _ := newTestServer(b, server.Config{CacheBytes: 1 << 30})
	ddg := bigLoopDDG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSchedule(b, c, server.ScheduleRequest{
			DDG: ddg, Machine: "gp:2:2:1",
			Name: fmt.Sprintf("big-%d", i), // unique name -> unique cache key
		})
	}
}

// BenchmarkServerCached repeats one request: after the first miss,
// every iteration is a cache hit. The acceptance bar is >= 10x the
// cold throughput on the same loop.
func BenchmarkServerCached(b *testing.B) {
	c, _ := newTestServer(b, server.Config{})
	req := server.ScheduleRequest{DDG: bigLoopDDG(b), Machine: "gp:2:2:1", Name: "big"}
	benchSchedule(b, c, req) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSchedule(b, c, req)
	}
}
