package server

import (
	"encoding/json"

	"clustersched/internal/cache"
	"clustersched/internal/diag"
	"clustersched/internal/obs"
)

// API version prefix of every scheduling route.
const apiPrefix = "/v1"

// ScheduleRequest asks the daemon for one clustered modulo schedule.
// Exactly one of DDG (the ddg text format, one loop) or Source (the
// loop language, one loop) must be set. Machine is a spec in the CLI
// mini-language ("gp:2:2:1", "fs:4:4:2", "grid:2", "ring:6:2",
// "unified:8"). The remaining fields mirror the facade options and
// default like them when zero.
type ScheduleRequest struct {
	// Name overrides the loop's own name in the response (and is part
	// of the cache identity).
	Name string `json:"name,omitempty"`
	// DDG is one loop in the ddg text format.
	DDG string `json:"ddg,omitempty"`
	// Source is one loop in the loop language.
	Source string `json:"source,omitempty"`
	// Machine is the target machine spec.
	Machine string `json:"machine"`
	// Variant selects the assignment algorithm: simple,
	// simple-iterative, heuristic, heuristic-iterative (default).
	Variant string `json:"variant,omitempty"`
	// Scheduler selects the phase-two scheduler: ims (default) or sms.
	Scheduler string `json:"scheduler,omitempty"`
	// BudgetPerNode sets the assignment eviction budget (0 = default).
	BudgetPerNode int `json:"budget_per_node,omitempty"`
	// MaxIISlack bounds the II search above MII (0 = default).
	MaxIISlack int `json:"max_ii_slack,omitempty"`
}

// ScheduleResponse is one finished schedule. Identical requests get
// byte-identical responses: the body is cached as encoded bytes, so
// Stats describe the run that originally produced the entry.
type ScheduleResponse struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	II      int    `json:"ii"`
	MII     int    `json:"mii"`
	Copies  int    `json:"copies"`
	Stages  int    `json:"stages"`
	// ClusterOf and CycleOf cover the annotated graph: input nodes
	// first (same IDs), then the inserted copies.
	ClusterOf []int `json:"cluster_of"`
	CycleOf   []int `json:"cycle_of"`
	// Kernel is the steady-state kernel text.
	Kernel string `json:"kernel"`
	// Stats are the search-effort counters of the producing run.
	Stats obs.Stats `json:"stats"`
	// Diagnostics is the full schedule audit (verify.Audit via
	// Result.Audit); empty for a valid schedule.
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
}

// BatchRequest schedules every loop of a multi-loop DDG dump or loop
// source file on one machine, fanning out over the daemon's worker
// pool. Options mean the same as in ScheduleRequest.
type BatchRequest struct {
	DDG           string `json:"ddg,omitempty"`
	Source        string `json:"source,omitempty"`
	Machine       string `json:"machine"`
	Variant       string `json:"variant,omitempty"`
	Scheduler     string `json:"scheduler,omitempty"`
	BudgetPerNode int    `json:"budget_per_node,omitempty"`
	MaxIISlack    int    `json:"max_ii_slack,omitempty"`
}

// BatchItem is one loop's outcome inside a batch: either Result (a
// raw ScheduleResponse, byte-identical to what /v1/schedule returns
// for the same request) or Error.
type BatchItem struct {
	Name   string `json:"name"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Result is the encoded ScheduleResponse; raw so cached bodies are
	// passed through untouched.
	Result json.RawMessage `json:"result,omitempty"`
}

// BatchResponse reports every loop of a batch in input order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// CacheHits counts items served from the result cache.
	CacheHits int `json:"cache_hits"`
}

// CompileRequest compiles a whole translation unit through the
// streaming compile pipeline (internal/compile): every loop goes all
// the way to an emitted kernel — schedule, optional stage scheduling,
// register allocation, emission, optional sim cross-validation —
// with results cached per loop, so two translation units sharing
// loops share the work. Scheduling options mean the same as in
// ScheduleRequest.
type CompileRequest struct {
	DDG           string `json:"ddg,omitempty"`
	Source        string `json:"source,omitempty"`
	Machine       string `json:"machine"`
	Variant       string `json:"variant,omitempty"`
	Scheduler     string `json:"scheduler,omitempty"`
	BudgetPerNode int    `json:"budget_per_node,omitempty"`
	MaxIISlack    int    `json:"max_ii_slack,omitempty"`
	// StageSched runs stage scheduling on every kernel before register
	// allocation.
	StageSched bool `json:"stagesched,omitempty"`
	// Pipelined emits prologue, kernel, and epilogue instead of the
	// steady-state kernel only.
	Pipelined bool `json:"pipelined,omitempty"`
	// Validate cross-checks every emitted kernel with the sim
	// functional executor before replying.
	Validate bool `json:"validate,omitempty"`
}

// CompileResult is one loop fully compiled; it is what a
// CompileItem's raw Result decodes to.
type CompileResult struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	II      int    `json:"ii"`
	MII     int    `json:"mii"`
	Copies  int    `json:"copies"`
	Stages  int    `json:"stages"`
	// Moved counts operations stage scheduling relocated (zero unless
	// the request set stagesched).
	Moved int `json:"moved"`
	// Factor and RegsPerCluster describe the MVE register allocation.
	Factor         int   `json:"factor"`
	RegsPerCluster []int `json:"regs_per_cluster"`
	// Kernel is the emitted kernel (or full pipelined listing).
	Kernel string `json:"kernel"`
	// Stats are the search-effort counters of the producing run.
	Stats obs.Stats `json:"stats"`
}

// CompileItem is one loop's outcome inside a compile: either Result
// (a raw CompileResult) or Error. Cached items are passed through
// byte-identical to the run that produced them.
type CompileItem struct {
	Name   string          `json:"name"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// CompileResponse reports every loop of a translation unit in input
// order.
type CompileResponse struct {
	Items     []CompileItem `json:"items"`
	Scheduled int           `json:"scheduled"`
	Failed    int           `json:"failed"`
	CacheHits int           `json:"cache_hits"`
}

// LintRequest runs the static-analysis passes without scheduling:
// loop source, DDG dumps (read laxly, like clusterlint), and machine
// specs (comma-separated) may each be given.
type LintRequest struct {
	DDG     string `json:"ddg,omitempty"`
	Source  string `json:"source,omitempty"`
	Machine string `json:"machine,omitempty"`
}

// LintResponse carries every finding. Errors counts the
// Error-severity subset (the daemon's analogue of clusterlint's exit
// status).
type LintResponse struct {
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	Errors      int               `json:"errors"`
}

// StatsResponse is the /statsz snapshot: process-level request
// counters, the result cache, and the scheduling effort aggregated
// over every pipeline run the daemon executed (cache hits add
// nothing — no pipeline ran).
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      int64       `json:"requests"`
	Scheduled     int64       `json:"scheduled"`
	Rejected      int64       `json:"rejected"`
	Inflight      int         `json:"inflight"`
	Cache         cache.Stats `json:"cache"`
	Sched         obs.Stats   `json:"sched"`
}

// FleetzResponse is the /fleetz heartbeat snapshot a clusterlb
// balancer polls: the worker's identity, queue depth (Inflight out of
// MaxInflight), and the cache picture with the per-shard breakdown.
type FleetzResponse struct {
	// ID is the worker's configured node identity (Config.NodeID).
	ID            string  `json:"id"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Accepting is false only while the worker is draining.
	Accepting bool `json:"accepting"`
	// Inflight is the admitted-request depth the balancer's
	// power-of-k-choices placement scores against.
	Inflight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	Requests    int64 `json:"requests"`
	Scheduled   int64 `json:"scheduled"`
	Rejected    int64 `json:"rejected"`
	// Cache includes the per-shard occupancy/eviction rows
	// (cache.StatsDetail), so shard skew is visible fleet-wide.
	Cache cache.Stats `json:"cache"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// Diagnostics carry the structured findings when the failure came
	// from input lint.
	Diagnostics []diag.Diagnostic `json:"diagnostics,omitempty"`
}
