// Package server implements clusterd's HTTP JSON API: a long-running
// scheduling service in front of the clustersched facade, with a
// content-addressed result cache (package cache), bounded concurrency
// with 429 backpressure, and cancellation threaded from the client
// connection all the way into the II-escalation loop.
//
// Routes (see docs/SERVICE.md for the full reference):
//
//	POST /v1/schedule   schedule one loop (ddg text or loop source)
//	POST /v1/batch      schedule every loop of a multi-loop payload
//	POST /v1/compile    fully compile a translation unit to kernels
//	POST /v1/lint       static analysis without scheduling
//	GET  /healthz       liveness probe
//	GET  /statsz        cache, request, and search-effort counters
//
// Identical schedule requests are served from the cache byte-for-byte:
// the cache stores the encoded response body, and the X-Cache response
// header says whether a request was a miss (this request ran the
// pipeline), a hit (served from the store), or coalesced (shared the
// result of a concurrent identical request).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersched"
	"clustersched/internal/assign"
	"clustersched/internal/cache"
	"clustersched/internal/cli"
	"clustersched/internal/compile"
	"clustersched/internal/ddgio"
	"clustersched/internal/diag"
	"clustersched/internal/frontend"
	"clustersched/internal/lint"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
	"clustersched/internal/pool"
)

// maxBodyBytes bounds every request body.
const maxBodyBytes = 16 << 20

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// recorded when the client disconnected before its schedule finished.
// The client never sees it — the connection is gone — but it keeps the
// handler's accounting honest.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value is usable: default cache
// budget, no per-request timeout, GOMAXPROCS-derived concurrency.
type Config struct {
	// CacheBytes is the result cache budget (cache.DefaultMaxBytes
	// when <= 0).
	CacheBytes int64
	// Timeout bounds each schedule's wall-clock time via the facade's
	// WithTimeout; zero means the client connection is the only bound.
	Timeout time.Duration
	// MaxInflight caps concurrently admitted requests; excess requests
	// are rejected with 429 (4 x GOMAXPROCS when <= 0).
	MaxInflight int
	// Workers is the batch fan-out width (GOMAXPROCS when <= 0).
	Workers int
	// Observer, when set, receives the trace events of every pipeline
	// run the server executes. It is shared across concurrent runs and
	// must be safe for concurrent use.
	Observer obs.Observer
	// NodeID identifies this worker inside a clusterlb fleet; it is
	// reported on /fleetz. Empty is fine for a standalone daemon.
	NodeID string
}

// Server is the daemon's http.Handler. Create one with New.
type Server struct {
	cfg   Config
	cache *cache.Cache
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	requests  atomic.Int64
	scheduled atomic.Int64
	rejected  atomic.Int64

	mu    sync.Mutex
	sched obs.Stats
}

// New builds a Server ready to serve.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:   cfg,
		cache: cache.New(cfg.CacheBytes),
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
	}
	s.mux.HandleFunc(apiPrefix+"/schedule", s.handleSchedule)
	s.mux.HandleFunc(apiPrefix+"/batch", s.handleBatch)
	s.mux.HandleFunc(apiPrefix+"/compile", s.handleCompile)
	s.mux.HandleFunc(apiPrefix+"/lint", s.handleLint)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/fleetz", s.handleFleetz)
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats exposes the result cache counters (also on /statsz).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// acquire admits a request into the bounded in-flight set, or reports
// backpressure.
func (s *Server) acquire() (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.rejected.Add(1)
		return nil, false
	}
}

func (s *Server) addSchedStats(st obs.Stats) {
	s.mu.Lock()
	s.sched.Add(st)
	s.mu.Unlock()
}

// schedSnapshot returns the aggregated search-effort counters.
func (s *Server) schedSnapshot() obs.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeError renders err as a JSON error body, surfacing structured
// lint findings when the error carries a *diag.List.
func writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	var list *diag.List
	if errors.As(err, &list) {
		resp.Diagnostics = list.Diags
	}
	writeJSON(w, status, resp)
}

// scheduleErrorStatus maps a failed schedule to its HTTP status:
// cancellation from the client connection, deadline from the
// per-request timeout, anything else is an unprocessable input (lint
// findings, II search exhausted).
func scheduleErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// scheduleJob is one resolved schedule request: the loop, the machine,
// the facade options, and the cache identity.
type scheduleJob struct {
	name        string
	machineSpec string
	graph       *clustersched.Graph
	machine     *clustersched.Machine
	options     []clustersched.Option
	key         string
}

// resolveCommon parses the machine spec and option names shared by
// schedule and batch requests, returning the facade options and the
// option part of the cache identity.
func (s *Server) resolveCommon(machineSpec, variant, scheduler string, budget, slack int) (*clustersched.Machine, []clustersched.Option, []string, error) {
	if machineSpec == "" {
		return nil, nil, nil, errors.New("machine spec is required")
	}
	m, err := cli.ParseMachine(machineSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	var opts []clustersched.Option
	if variant == "" {
		variant = "heuristic-iterative"
	}
	v, err := cli.ParseVariant(variant)
	if err != nil {
		return nil, nil, nil, err
	}
	opts = append(opts, clustersched.WithVariant(v))
	if scheduler == "" {
		scheduler = "ims"
	}
	sch, err := cli.ParseScheduler(scheduler)
	if err != nil {
		return nil, nil, nil, err
	}
	opts = append(opts, clustersched.WithScheduler(clustersched.Scheduler(sch)))
	if budget > 0 {
		opts = append(opts, clustersched.WithBudget(budget))
	}
	if slack > 0 {
		opts = append(opts, clustersched.WithMaxIISlack(slack))
	}
	if s.cfg.Timeout > 0 {
		opts = append(opts, clustersched.WithTimeout(s.cfg.Timeout))
	}
	if s.cfg.Observer != nil {
		opts = append(opts, clustersched.WithObserver(s.cfg.Observer))
	}
	// The cache identity must cover everything that changes the
	// response body; the timeout and observer do not.
	return m, opts, optionIdentity(variant, scheduler, budget, slack), nil
}

// optionIdentity is the option part of the cache identity. It is
// shared with KeyForRequest so the balancer's ring routing and the
// handler's cache lookup can never disagree on a key.
func optionIdentity(variant, scheduler string, budget, slack int) []string {
	if variant == "" {
		variant = "heuristic-iterative"
	}
	if scheduler == "" {
		scheduler = "ims"
	}
	return []string{
		strings.ToLower(variant),
		strings.ToLower(scheduler),
		fmt.Sprintf("budget=%d", budget),
		fmt.Sprintf("slack=%d", slack),
	}
}

// nameFor resolves the response (and cache-identity) name of a loop:
// the request override, then the loop's own name, then "loop".
func nameFor(reqName, loopName string) string {
	if reqName != "" {
		return reqName
	}
	if loopName != "" {
		return loopName
	}
	return "loop"
}

// parseLoops loads the request's loops from exactly one of the ddg
// text or loop-language payloads.
func parseLoops(ddgText, source string) ([]ddgio.NamedGraph, error) {
	switch {
	case ddgText != "" && source != "":
		return nil, errors.New("give either ddg or source, not both")
	case ddgText != "":
		loops, err := ddgio.Read(strings.NewReader(ddgText))
		if err != nil {
			return nil, err
		}
		if len(loops) == 0 {
			return nil, errors.New("ddg payload contains no loops")
		}
		return loops, nil
	case source != "":
		compiled, err := frontend.Compile(source)
		if err != nil {
			return nil, err
		}
		loops := make([]ddgio.NamedGraph, len(compiled))
		for i, l := range compiled {
			loops[i] = ddgio.NamedGraph{Name: l.Name, Graph: l.Graph}
		}
		return loops, nil
	default:
		return nil, errors.New("give a loop as ddg text or loop source")
	}
}

// buildJob resolves one loop into a runnable, cacheable job.
func (s *Server) buildJob(name, machineSpec string, loop ddgio.NamedGraph, m *clustersched.Machine, opts []clustersched.Option, optID []string) scheduleJob {
	name = nameFor(name, loop.Name)
	id := append([]string{name}, optID...)
	return scheduleJob{
		name:        name,
		machineSpec: machineSpec,
		graph:       loop.Graph,
		machine:     m,
		options:     opts,
		key:         cache.Key(loop.Graph, m, id...),
	}
}

// ResponseFor flattens a finished schedule into the API response
// shape. It is also what schedview -json prints, so offline and
// service output stay field-compatible.
func ResponseFor(name, machineSpec string, res *clustersched.Result) ScheduleResponse {
	diags := res.Audit()
	if diags == nil {
		diags = []diag.Diagnostic{}
	}
	return ScheduleResponse{
		Name:        name,
		Machine:     machineSpec,
		II:          res.II,
		MII:         res.MII,
		Copies:      res.Copies,
		Stages:      res.Stages(),
		ClusterOf:   res.ClusterOf,
		CycleOf:     res.CycleOf,
		Kernel:      res.Kernel(),
		Stats:       res.Stats(),
		Diagnostics: diags,
	}
}

// scheduleFunc runs one loop through the pipeline. The single-shot
// handler uses the facade directly; the batch handler substitutes a
// session free-list so per-machine precomputation is shared across the
// request's loops.
type scheduleFunc func(ctx context.Context, g *clustersched.Graph) (*clustersched.Result, error)

// runJob serves one job through the cache: on a miss it runs the full
// pipeline under ctx (so a dead client connection aborts the II
// search), audits the schedule, and stores the encoded response.
func (s *Server) runJob(ctx context.Context, job scheduleJob, schedule scheduleFunc) ([]byte, cache.Source, error) {
	return s.cache.GetOrCompute(ctx, job.key, func(ctx context.Context) ([]byte, error) {
		res, err := schedule(ctx, job.graph)
		if err != nil {
			return nil, err
		}
		s.scheduled.Add(1)
		s.addSchedStats(res.Stats())
		return json.Marshal(ResponseFor(job.name, job.machineSpec, res))
	})
}

// sessionPool is a bounded free list of facade sessions for one batch
// request's (machine, options) pair: at most `workers` sessions exist,
// each used by one goroutine at a time.
type sessionPool struct {
	m       *clustersched.Machine
	options []clustersched.Option
	free    chan *clustersched.Session
}

func newSessionPool(m *clustersched.Machine, options []clustersched.Option, workers int) *sessionPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &sessionPool{m: m, options: options, free: make(chan *clustersched.Session, workers)}
}

func (p *sessionPool) schedule(ctx context.Context, g *clustersched.Graph) (*clustersched.Result, error) {
	var sess *clustersched.Session
	select {
	case sess = <-p.free:
	default:
		sess = clustersched.NewSession(p.m, p.options...)
	}
	res, err := sess.Schedule(ctx, g)
	select {
	case p.free <- sess:
	default:
	}
	return res, err
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	s.requests.Add(1)
	release, ok := s.acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("server at max in-flight requests"))
		return
	}
	defer release()

	var req ScheduleRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, opts, optID, err := s.resolveCommon(req.Machine, req.Variant, req.Scheduler, req.BudgetPerNode, req.MaxIISlack)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	loops, err := parseLoops(req.DDG, req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if len(loops) != 1 {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("schedule takes exactly one loop, got %d (use /v1/batch)", len(loops)))
		return
	}
	job := s.buildJob(req.Name, req.Machine, loops[0], m, opts, optID)
	body, src, err := s.runJob(r.Context(), job, func(ctx context.Context, g *clustersched.Graph) (*clustersched.Result, error) {
		return clustersched.ScheduleContext(ctx, g, job.machine, job.options...)
	})
	if err != nil {
		writeError(w, scheduleErrorStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src.String())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	s.requests.Add(1)
	release, ok := s.acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("server at max in-flight requests"))
		return
	}
	defer release()

	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, opts, optID, err := s.resolveCommon(req.Machine, req.Variant, req.Scheduler, req.BudgetPerNode, req.MaxIISlack)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	loops, err := parseLoops(req.DDG, req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	items := make([]BatchItem, len(loops))
	var hits atomic.Int64
	ctx := r.Context()
	sessions := newSessionPool(m, opts, s.cfg.Workers)
	perr := pool.ForEach(ctx, len(loops), s.cfg.Workers, func(i int) {
		job := s.buildJob("", req.Machine, loops[i], m, opts, optID)
		items[i].Name = job.name
		body, src, err := s.runJob(ctx, job, sessions.schedule)
		if err != nil {
			items[i].Error = err.Error()
			return
		}
		items[i].Result = json.RawMessage(body)
		if src != cache.Miss {
			items[i].Cached = true
			hits.Add(1)
		}
	})
	if perr != nil {
		writeError(w, scheduleErrorStatus(perr), perr)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: items, CacheHits: int(hits.Load())})
}

// handleCompile is the whole-translation-unit endpoint: every loop is
// fully compiled — schedule, optional stage scheduling, register
// allocation, emission, optional sim validation — through one
// compile.Executor whose session pool is shared across the request's
// loops. The result cache works at per-loop granularity: a loop
// compiled under the same machine, options, and compile flags is
// served byte-identical from the store no matter which translation
// unit asked first.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	s.requests.Add(1)
	release, ok := s.acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("server at max in-flight requests"))
		return
	}
	defer release()

	var req CompileRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, opts, optID, err := s.resolveCommon(req.Machine, req.Variant, req.Scheduler, req.BudgetPerNode, req.MaxIISlack)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	loops, err := parseLoops(req.DDG, req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	// The facade options are pipeline.Options mutators; apply them over
	// the facade's own defaults so the compile path schedules exactly
	// like /v1/schedule under the same request fields.
	popts := pipeline.Options{
		Assign:       assign.Options{Variant: assign.HeuristicIterative},
		CollectStats: true,
	}
	for _, o := range opts {
		o(&popts)
	}
	ex := compile.NewExecutor(m, compile.Options{
		Pipeline:   popts,
		Workers:    s.cfg.Workers,
		StageSched: req.StageSched,
		Pipelined:  req.Pipelined,
		Validate:   req.Validate,
	})
	// The compile flags change the body, so they join the cache
	// identity alongside the scheduling options.
	compileID := append([]string{"compile",
		fmt.Sprintf("stagesched=%v", req.StageSched),
		fmt.Sprintf("pipelined=%v", req.Pipelined),
		fmt.Sprintf("validate=%v", req.Validate)}, optID...)

	items := make([]CompileItem, len(loops))
	var hits, failed atomic.Int64
	ctx := r.Context()
	perr := pool.ForEach(ctx, len(loops), s.cfg.Workers, func(i int) {
		name := nameFor("", loops[i].Name)
		items[i].Name = name
		key := cache.Key(loops[i].Graph, m, append([]string{name}, compileID...)...)
		body, src, err := s.cache.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
			lr := ex.One(ctx, frontend.Loop{Name: name, Graph: loops[i].Graph})
			if lr.Err != nil {
				return nil, lr.Err
			}
			s.scheduled.Add(1)
			s.addSchedStats(lr.Outcome.Stats)
			return json.Marshal(CompileResult{
				Name:           name,
				Machine:        req.Machine,
				II:             lr.Outcome.II,
				MII:            lr.Outcome.MII,
				Copies:         lr.Outcome.Assignment.Copies,
				Stages:         lr.Outcome.Schedule.StageCount(),
				Moved:          lr.Moved,
				Factor:         lr.Alloc.Factor,
				RegsPerCluster: lr.Alloc.RegsPerCluster,
				Kernel:         lr.Text,
				Stats:          lr.Outcome.Stats,
			})
		})
		if err != nil {
			items[i].Error = err.Error()
			failed.Add(1)
			return
		}
		items[i].Result = json.RawMessage(body)
		if src != cache.Miss {
			items[i].Cached = true
			hits.Add(1)
		}
	})
	if perr != nil {
		writeError(w, scheduleErrorStatus(perr), perr)
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Items:     items,
		Scheduled: len(items) - int(failed.Load()),
		Failed:    int(failed.Load()),
		CacheHits: int(hits.Load()),
	})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	s.requests.Add(1)
	var req LintRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.DDG == "" && req.Source == "" && req.Machine == "" {
		writeError(w, http.StatusBadRequest, errors.New("nothing to lint: give ddg, source, or machine"))
		return
	}
	diags := []diag.Diagnostic{}
	if req.Source != "" {
		diags = append(diags, lintSource("<source>", req.Source)...)
	}
	if req.DDG != "" {
		loops, err := ddgio.ReadLax(strings.NewReader(req.DDG))
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		for _, l := range loops {
			for _, d := range lint.Graph(l.Graph) {
				d.File = "<ddg>"
				if d.Subject == "" {
					d.Subject = "loop " + l.Name
				} else {
					d.Subject = "loop " + l.Name + ", " + d.Subject
				}
				diags = append(diags, d)
			}
		}
	}
	if req.Machine != "" {
		for _, spec := range strings.Split(req.Machine, ",") {
			m, err := cli.ParseMachine(strings.TrimSpace(spec))
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			diags = append(diags, lint.Machine(m)...)
		}
	}
	writeJSON(w, http.StatusOK, LintResponse{Diagnostics: diags, Errors: diag.CountErrors(diags)})
}

// lintSource mirrors clusterlint's loop-source pass: the AST lint
// first, then the graph lint over every loop that compiles.
func lintSource(path, src string) []diag.Diagnostic {
	diags := lint.Source(path, src)
	if diag.CountErrors(diags) > 0 {
		return diags
	}
	loops, err := frontend.Compile(src)
	if err != nil {
		return append(diags, diag.Diagnostic{
			Code: lint.CodeParseError, Severity: diag.Error,
			File: path, Message: err.Error(),
		})
	}
	for _, l := range loops {
		for _, d := range lint.Graph(l.Graph) {
			d.File = path
			if d.Subject == "" {
				d.Subject = "loop " + l.Name
			} else {
				d.Subject = "loop " + l.Name + ", " + d.Subject
			}
			diags = append(diags, d)
		}
	}
	return diags
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Scheduled:     s.scheduled.Load(),
		Rejected:      s.rejected.Load(),
		Inflight:      len(s.sem),
		Cache:         s.cache.StatsDetail(),
		Sched:         s.schedSnapshot(),
	})
}
