// Fleet integration of one clusterd worker: the /fleetz heartbeat
// endpoint the balancer polls, and the canonical request-key
// computation clusterlb uses to route /v1/schedule requests to their
// consistent-hash owner (package cachering). Both sides derive the
// key from the same helpers as the cache lookup itself, so routing
// and storage cannot drift apart.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"clustersched/internal/cache"
	"clustersched/internal/cli"
)

// KeyForRequest resolves a schedule request exactly like the
// /v1/schedule handler and returns its content-addressed cache key.
// It fails on whatever the handler would reject (missing machine, bad
// option spec, zero or several loops); the balancer falls back to
// load-based placement for such requests and lets the worker produce
// the authoritative error.
func KeyForRequest(req ScheduleRequest) (string, error) {
	if req.Machine == "" {
		return "", errors.New("machine spec is required")
	}
	m, err := cli.ParseMachine(req.Machine)
	if err != nil {
		return "", err
	}
	// Validate the option spellings like resolveCommon, so an invalid
	// variant is routed by load, not by a key the worker will reject.
	variant := req.Variant
	if variant == "" {
		variant = "heuristic-iterative"
	}
	if _, err := cli.ParseVariant(variant); err != nil {
		return "", err
	}
	scheduler := req.Scheduler
	if scheduler == "" {
		scheduler = "ims"
	}
	if _, err := cli.ParseScheduler(scheduler); err != nil {
		return "", err
	}
	loops, err := parseLoops(req.DDG, req.Source)
	if err != nil {
		return "", err
	}
	if len(loops) != 1 {
		return "", fmt.Errorf("schedule takes exactly one loop, got %d", len(loops))
	}
	id := append([]string{nameFor(req.Name, loops[0].Name)},
		optionIdentity(req.Variant, req.Scheduler, req.BudgetPerNode, req.MaxIISlack)...)
	return cache.Key(loops[0].Graph, m, id...), nil
}

// handleFleetz serves the worker-side heartbeat: identity, queue
// depth, and the per-shard cache picture the balancer's placement and
// rebalance decisions feed on.
func (s *Server) handleFleetz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, FleetzResponse{
		ID:            s.cfg.NodeID,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Accepting:     true,
		Inflight:      len(s.sem),
		MaxInflight:   cap(s.sem),
		Requests:      s.requests.Load(),
		Scheduled:     s.scheduled.Load(),
		Rejected:      s.rejected.Load(),
		Cache:         s.cache.StatsDetail(),
	})
}
