package clustersched_test

import (
	"testing"

	"clustersched"
)

// TestResultAudit covers the facade's coded-diagnostic audit: a fresh
// schedule audits clean, and a corrupted one reports each violation
// with its SCHED code rather than just the first error.
func TestResultAudit(t *testing.T) {
	res, err := clustersched.Schedule(dotProduct(), clustersched.BusedGP(2, 2, 1))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if diags := res.Audit(); len(diags) != 0 {
		t.Fatalf("valid schedule audited %d findings: %v", len(diags), diags)
	}

	// Corrupt the schedule: pull the multiply before its operands'
	// load latency. Audit must report it as a coded dependence
	// violation, and Validate must agree something is broken.
	saved := res.CycleOf[2]
	res.CycleOf[2] = 0
	diags := res.Audit()
	if len(diags) == 0 {
		t.Fatal("corrupted schedule audited clean")
	}
	found := false
	for _, d := range diags {
		if d.Code == "" {
			t.Errorf("diagnostic without a code: %+v", d)
		}
		if d.Code == "SCHED003" {
			found = true
		}
	}
	if !found {
		t.Errorf("no SCHED003 dependence violation in %v", diags)
	}
	if err := res.Validate(); err == nil {
		t.Error("Validate passed a schedule Audit rejects")
	}

	// Restoring the cycle restores a clean audit: Audit re-derives
	// everything from current state, it does not cache.
	res.CycleOf[2] = saved
	if diags := res.Audit(); len(diags) != 0 {
		t.Errorf("restored schedule still audits %d findings: %v", len(diags), diags)
	}
}
