module clustersched

go 1.22
