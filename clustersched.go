// Package clustersched is a library implementation of "Effective
// Cluster Assignment for Modulo Scheduling" (Nystrom & Eichenberger,
// MICRO 1998): software pipelining of inner loops for clustered VLIW
// machines, where the register file is split across clusters and
// values move between them through explicit copy operations.
//
// The workflow mirrors the paper's two-phase process:
//
//  1. Describe the loop as a data-dependence graph (Graph) and the
//     target as a machine configuration (Machine).
//  2. Call Schedule: the cluster assignment pass maps operations to
//     clusters and inserts copies, then a traditional modulo scheduler
//     (iterative modulo scheduling, or the swing modulo scheduler)
//     produces the kernel. The initiation interval is escalated until
//     both phases succeed.
//
// A minimal dot-product example:
//
//	g := clustersched.NewGraph()
//	a := g.AddNode(clustersched.OpLoad, "a[i]")
//	b := g.AddNode(clustersched.OpLoad, "b[i]")
//	m := g.AddNode(clustersched.OpFMul, "")
//	s := g.AddNode(clustersched.OpFAdd, "s")
//	g.AddEdge(a, m, 0)
//	g.AddEdge(b, m, 0)
//	g.AddEdge(m, s, 0)
//	g.AddEdge(s, s, 1) // accumulator recurrence
//
//	res, err := clustersched.Schedule(g, clustersched.BusedGP(2, 2, 1))
//	if err != nil { ... }
//	fmt.Println(res.II, res.Kernel())
//
// # Cancellation and observability
//
// ScheduleContext is the context-aware entry point: it honours
// cancellation and deadlines mid-search (between II candidates, node
// placements, and scheduler displacements) and returns an error
// wrapping ctx.Err() when the context ends the run. Schedule is a thin
// wrapper over it with context.Background().
//
// Every schedule collects search-effort counters, available as
// Result.Stats(). WithObserver streams structured trace events
// (phase timings, II candidates, evictions, copy-pressure rejections,
// scheduler displacements — see docs/OBSERVABILITY.md) to an Observer
// such as NewJSONObserver.
//
// # Option defaults
//
// All options have working defaults; zero options reproduce the
// paper's full algorithm:
//
//	Option          Default                 Meaning
//	WithVariant     HeuristicIterative      the paper's complete assignment algorithm
//	WithScheduler   IMS                     phase-two engine (SMS reproduces the paper's choice)
//	WithBudget      8 evictions per node    assignment backtracking budget (min 16 total)
//	WithMaxIISlack  96 cycles above MII     II search headroom before giving up
//	WithTimeout     none                    wall-clock bound on the whole search
//	WithObserver    none (counters only)    structured trace event sink
package clustersched

import (
	"context"
	"io"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/ddgio"
	"clustersched/internal/diag"
	"clustersched/internal/dot"
	"clustersched/internal/emit"
	"clustersched/internal/frontend"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
	"clustersched/internal/regalloc"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/stagesched"
	"clustersched/internal/verify"
)

// Graph is a loop body's data-dependence graph. Nodes are operations;
// an edge (from, to, distance) says the value produced by from in
// iteration i is consumed by to in iteration i+distance.
type Graph = ddg.Graph

// OpKind classifies an operation (latencies follow the paper's
// Table 2).
type OpKind = ddg.OpKind

// Operation kinds.
const (
	OpALU    = ddg.OpALU
	OpShift  = ddg.OpShift
	OpBranch = ddg.OpBranch
	OpLoad   = ddg.OpLoad
	OpStore  = ddg.OpStore
	OpFAdd   = ddg.OpFAdd
	OpFMul   = ddg.OpFMul
	OpFDiv   = ddg.OpFDiv
	OpFSqrt  = ddg.OpFSqrt
	OpCopy   = ddg.OpCopy
)

// NewGraph returns an empty dependence graph.
func NewGraph() *Graph { return ddg.NewGraph(8, 16) }

// Machine describes a clustered (or unified) VLIW target.
type Machine = machine.Config

// FUClass is a function-unit class (general purpose, memory, integer,
// floating point).
type FUClass = machine.FUClass

// Function-unit classes for hand-built machine configurations.
const (
	FUGeneral = machine.FUGeneral
	FUMemory  = machine.FUMemory
	FUInteger = machine.FUInteger
	FUFloat   = machine.FUFloat
)

// BusedGP returns a broadcast-bus machine of `clusters` clusters, each
// with four general-purpose units and `ports` read and write ports,
// sharing `buses` buses — the machine of the paper's Figures 12-17.
func BusedGP(clusters, buses, ports int) *Machine {
	return machine.NewBusedGP(clusters, buses, ports)
}

// BusedFS returns the fully specialized variant (one memory, two
// integer, one floating-point unit per cluster) of Figures 18-19.
func BusedFS(clusters, buses, ports int) *Machine {
	return machine.NewBusedFS(clusters, buses, ports)
}

// Grid4 returns the four-cluster point-to-point grid machine of
// Section 2.1: three specialized units per cluster, dedicated links to
// the two adjacent clusters only.
func Grid4(ports int) *Machine { return machine.NewGrid4(ports) }

// Cluster is one cluster of a custom machine: its function units plus
// the read/write ports connecting it to the communication fabric.
type Cluster = machine.Cluster

// Link is a dedicated point-to-point connection between two clusters
// of a custom machine.
type Link = machine.Link

// Network selects a custom machine's communication fabric.
type Network = machine.Network

// Communication fabrics for custom machines.
const (
	Broadcast    = machine.Broadcast
	PointToPoint = machine.PointToPoint
)

// NewCluster builds a cluster for a custom machine configuration.
func NewCluster(fus []FUClass, readPorts, writePorts int) Cluster {
	return Cluster{FUs: fus, ReadPorts: readPorts, WritePorts: writePorts}
}

// DefaultLatencies returns the paper's Table 2 operation latencies,
// the starting point for custom machine configurations.
func DefaultLatencies() [ddg.NumOpKinds]int { return machine.DefaultLatencies() }

// Variant selects the cluster-assignment algorithm; the paper's full
// algorithm is HeuristicIterative.
type Variant = assign.Variant

// Assignment variants compared in the paper's Figures 12 and 13.
const (
	Simple             = assign.Simple
	SimpleIterative    = assign.SimpleIterative
	Heuristic          = assign.Heuristic
	HeuristicIterative = assign.HeuristicIterative
)

// Scheduler selects the phase-two modulo scheduler.
type Scheduler = pipeline.Scheduler

// Phase-two schedulers.
const (
	IMS = pipeline.IMS // Rau's iterative modulo scheduler (default)
	SMS = pipeline.SMS // iterative swing modulo scheduler
)

// Option customizes Schedule.
type Option func(*pipeline.Options)

// WithVariant selects the assignment algorithm (default
// HeuristicIterative).
func WithVariant(v Variant) Option {
	return func(o *pipeline.Options) { o.Assign.Variant = v }
}

// WithScheduler selects the phase-two scheduler (default IMS).
func WithScheduler(s Scheduler) Option {
	return func(o *pipeline.Options) { o.Scheduler = s }
}

// WithBudget sets the assignment backtracking budget per node.
func WithBudget(perNode int) Option {
	return func(o *pipeline.Options) { o.Assign.BudgetPerNode = perNode }
}

// WithMaxIISlack bounds the II search above MII.
func WithMaxIISlack(slack int) Option {
	return func(o *pipeline.Options) { o.MaxIISlack = slack }
}

// Observer receives structured trace events from inside a schedule
// run: phase begin/end with durations, II candidates, assignment
// commits and force-placements, evictions, PCR/MRC copy-pressure
// rejections, budget exhaustions, and scheduler displacements. Calls
// are synchronous with the search; an Observer shared between
// concurrent schedules must be safe for concurrent use.
type Observer = obs.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = obs.ObserverFunc

// Event is one structured trace record; see docs/OBSERVABILITY.md for
// the catalogue.
type Event = obs.Event

// EventKind identifies a trace event type.
type EventKind = obs.EventKind

// Trace event kinds.
const (
	KindPhaseBegin      = obs.KindPhaseBegin
	KindPhaseEnd        = obs.KindPhaseEnd
	KindIICandidate     = obs.KindIICandidate
	KindAssignCommit    = obs.KindAssignCommit
	KindForcePlace      = obs.KindForcePlace
	KindEviction        = obs.KindEviction
	KindPCRReject       = obs.KindPCRReject
	KindBudgetExhausted = obs.KindBudgetExhausted
	KindSchedDisplace   = obs.KindSchedDisplace
)

// Stats aggregates the search effort of one schedule: II candidates
// tried, assignment commits/force-placements/evictions, copy-pressure
// rejections, scheduler displacements, budget exhaustions, and
// per-phase wall-clock time.
type Stats = obs.Stats

// NewJSONObserver returns an Observer streaming events to w as JSON
// Lines (one object per line). It is safe to share across concurrent
// schedules.
func NewJSONObserver(w io.Writer) Observer { return obs.NewJSON(w) }

// WithObserver installs a trace event sink for the run.
func WithObserver(o Observer) Option {
	return func(po *pipeline.Options) { po.Observer = o }
}

// WithTimeout bounds the whole search's wall-clock time; the run ends
// with an error wrapping context.DeadlineExceeded when it trips. It
// composes with any deadline already on the caller's context (the
// earlier one wins).
func WithTimeout(d time.Duration) Option {
	return func(po *pipeline.Options) { po.Timeout = d }
}

// WithWarmStart turns warm-started II escalation on or off (default
// on): when on, each escalated II candidate is seeded from the failed
// candidate's last consistent partial assignment, falling back to a
// scratch run at the same II when the warm attempt fails. Off exists
// for ablation and A/B measurement.
func WithWarmStart(on bool) Option {
	return func(po *pipeline.Options) { po.DisableWarmStart = !on }
}

// WithSpeculation configures the speculative II search: window is the
// number of candidate IIs grouped into one probe round after the MII
// candidate fails (0 keeps the default), and workers bounds the
// goroutines probing one round concurrently (<= 1, the default, keeps
// the search sequential). Speculation never changes the result — the
// lowest feasible II is committed either way — only the wall-clock
// time to find it; see docs/OBSERVABILITY.md for the determinism
// contract.
func WithSpeculation(window, workers int) Option {
	return func(po *pipeline.Options) {
		po.SpeculativeWindow = window
		po.SpeculativeWorkers = workers
	}
}

// Result is a complete clustered modulo schedule.
type Result struct {
	// II is the achieved initiation interval; MII its lower bound.
	II, MII int
	// Copies is the number of inter-cluster copy operations inserted.
	Copies int
	// ClusterOf maps every node of Annotated to its cluster.
	ClusterOf []int
	// CycleOf maps every node of Annotated to its start cycle.
	CycleOf []int
	// Annotated is the scheduled graph: the input nodes (same IDs)
	// followed by the inserted copy nodes.
	Annotated *Graph

	machine *Machine
	input   sched.Input
	sch     *sched.Schedule
	stats   Stats
}

// Stats returns the search-effort counters of the run that produced
// this schedule: II candidates tried, assignment commits and
// evictions, scheduler displacements, and per-phase durations.
func (r *Result) Stats() Stats { return r.stats }

// Schedule software-pipelines loop g onto machine m using the paper's
// two-phase process, with the full heuristic iterative assignment by
// default. It is ScheduleContext under context.Background().
func Schedule(g *Graph, m *Machine, options ...Option) (*Result, error) {
	return ScheduleContext(context.Background(), g, m, options...)
}

// ScheduleContext is Schedule with cancellation: the search honours
// ctx mid-run — a canceled context or an expired deadline stops it
// between II candidates, node placements, and scheduler displacements,
// and the returned error wraps ctx.Err() (check it with
// errors.Is(err, context.Canceled) or context.DeadlineExceeded).
func ScheduleContext(ctx context.Context, g *Graph, m *Machine, options ...Option) (*Result, error) {
	out, err := pipeline.RunContext(ctx, g, m, buildOptions(options))
	if err != nil {
		return nil, err
	}
	return resultFromOutcome(m, out), nil
}

func buildOptions(options []Option) pipeline.Options {
	opts := pipeline.Options{
		Assign:       assign.Options{Variant: assign.HeuristicIterative},
		CollectStats: true,
	}
	for _, o := range options {
		o(&opts)
	}
	return opts
}

func resultFromOutcome(m *Machine, out *pipeline.Outcome) *Result {
	in := sched.Input{
		Graph:       out.Assignment.Graph,
		Machine:     m,
		ClusterOf:   out.Assignment.ClusterOf,
		CopyTargets: out.Assignment.CopyTargets,
		II:          out.II,
	}
	return &Result{
		II:        out.II,
		MII:       out.MII,
		Copies:    out.Assignment.Copies,
		ClusterOf: out.Assignment.ClusterOf,
		CycleOf:   out.Schedule.CycleOf,
		Annotated: out.Assignment.Graph,
		machine:   m,
		input:     in,
		sch:       out.Schedule,
		stats:     out.Stats,
	}
}

// Session is a reusable scheduling context for one machine: the
// machine lint verdict, the resource lower-bound tables, and the
// schedulers' working buffers are computed once and reused across
// loops, so scheduling a stream of loops on one machine skips the
// per-call setup ScheduleContext pays. Results are byte-identical to
// per-call ScheduleContext with the same options.
//
// A Session may be used by one goroutine at a time; for loop-level
// parallelism give each worker its own (see pipeline.RunBatch for the
// internal sharded form).
type Session struct {
	m *Machine
	s *pipeline.Session
}

// NewSession builds a reusable scheduling session for machine m with
// the same options ScheduleContext accepts.
func NewSession(m *Machine, options ...Option) *Session {
	return &Session{m: m, s: pipeline.NewSession(m, buildOptions(options))}
}

// Schedule software-pipelines loop g, like ScheduleContext but reusing
// the session's precomputed state.
func (s *Session) Schedule(ctx context.Context, g *Graph) (*Result, error) {
	out, err := s.s.Schedule(ctx, g)
	if err != nil {
		return nil, err
	}
	return resultFromOutcome(s.m, out), nil
}

// Kernel renders the steady-state kernel as text.
func (r *Result) Kernel() string { return emit.Kernel(r.input, r.sch) }

// Pipelined renders prologue, kernel, and epilogue.
func (r *Result) Pipelined() string { return emit.Pipelined(r.input, r.sch) }

// Gantt renders a per-cluster occupancy timeline of the kernel with
// utilization percentages.
func (r *Result) Gantt() string { return emit.Gantt(r.input, r.sch) }

// Stages returns the software-pipeline depth (kernel stages).
func (r *Result) Stages() int { return r.sch.StageCount() }

// Validate independently re-checks every dependence and resource of
// the schedule; a nil result is a correctness guarantee. It stops at
// the first violation; Audit enumerates all of them.
func (r *Result) Validate() error { return verify.Schedule(r.input, r.sch) }

// Diagnostic is one coded finding of an analysis or audit pass (see
// docs/DIAGNOSTICS.md for the code catalogue).
type Diagnostic = diag.Diagnostic

// Audit independently re-validates the schedule and returns every
// violation — broken dependences, bad cluster annotations, locality
// breaks, oversubscribed resources — as coded diagnostics, in
// deterministic order. An empty list is the same correctness
// guarantee as a nil Validate; unlike Validate, a broken schedule
// yields the complete finding list, not just the first.
func (r *Result) Audit() []Diagnostic { return verify.Audit(r.input, r.sch) }

// MaxLive estimates steady-state register pressure: machine-wide and
// per cluster.
func (r *Result) MaxLive() (total int, perCluster []int) {
	return verify.MaxLive(r.input, r.sch)
}

// OptimizeStages runs stage scheduling (Eichenberger & Davidson): it
// moves operations by whole multiples of II within their dependence
// slack to shorten register lifetimes. The schedule (CycleOf) is
// updated in place — II, resource use, and validity are preserved —
// and the number of moved operations returned.
func (r *Result) OptimizeStages() int { return stagesched.Optimize(r.input, r.sch) }

// RegisterAllocation is a modulo-variable-expansion register binding
// for the kernel (see internal/regalloc).
type RegisterAllocation = regalloc.Allocation

// Registers allocates kernel registers by modulo variable expansion:
// the kernel is unrolled by the MVE factor and each value instance is
// bound to a register of its cluster's file.
func (r *Result) Registers() *RegisterAllocation {
	return regalloc.AllocateMVE(r.input, r.sch)
}

// MVEFactor returns the kernel unroll factor required on machines
// without rotating register files: max over values of
// ceil(lifetime / II).
func (r *Result) MVEFactor() int { return regalloc.MVEFactor(r.input, r.sch) }

// RotatingAllocation is a rotating-register-file binding (Cydra 5 /
// IA-64 semantics): one logical register per value, physical location
// rotating each iteration, no kernel unrolling needed.
type RotatingAllocation = regalloc.Rotating

// RegistersRotating allocates kernel registers for rotating register
// files; compare its file sizes against Registers() to weigh rotation
// hardware against modulo-variable-expansion code growth.
func (r *Result) RegistersRotating() *RotatingAllocation {
	return regalloc.AllocateRotating(r.input, r.sch)
}

// SimulateRotating is Simulate under the rotating register binding.
func (r *Result) SimulateRotating(iters int) error {
	return sim.RunRotating(r.input, r.sch, regalloc.AllocateRotating(r.input, r.sch), iters)
}

// DOT renders the annotated, scheduled loop as a Graphviz graph,
// clustered by register file, for inspection and documentation.
func (r *Result) DOT() string { return dot.Render(r.input, r.sch) }

// Simulate functionally executes iters overlapped iterations of the
// schedule (0 selects a default long enough to wrap every rotation),
// modeling each cluster's register file under the MVE allocation and
// checking that every operand read observes exactly the value
// sequential execution would produce. A nil result is an end-to-end
// functional-correctness guarantee for the kernel.
func (r *Result) Simulate(iters int) error {
	return sim.Run(r.input, r.sch, regalloc.AllocateMVE(r.input, r.sch), iters)
}

// MII returns the lower initiation-interval bound of g on m —
// max(ResMII, RecMII) — without scheduling.
func MII(g *Graph, m *Machine) int { return mii.MII(g, m) }

// GenerateSuite returns the deterministic synthetic loop suite used by
// the benchmark harness (1327 loops matching the statistics of the
// paper's Table 1 when called with count 0 and seed 0 defaults).
func GenerateSuite(seed int64, count int) []*Graph {
	return loopgen.Suite(loopgen.Options{Seed: seed, Count: count})
}

// ReadLoops parses loops in the ddg text format (see cmd/schedview for
// the syntax).
func ReadLoops(r io.Reader) ([]ddgio.NamedGraph, error) { return ddgio.Read(r) }

// WriteLoop renders a loop in the ddg text format.
func WriteLoop(w io.Writer, name string, g *Graph) error { return ddgio.Write(w, name, g) }

// NamedGraph pairs a parsed loop with its name.
type NamedGraph = ddgio.NamedGraph

// CompiledLoop pairs a loop compiled from source with its name.
type CompiledLoop = frontend.Loop

// CompileSource compiles loops written in the small loop language into
// dependence graphs (see cmd/clusterc for the syntax):
//
//	loop dotprod {
//	    s = s + a[i] * b[i]
//	}
//
// Array accesses become loads and stores with memory dependences
// derived from the subscripts; scalars read before their definition
// carry the previous iteration's value (recurrences); loop-invariant
// scalars and constants fold away.
func CompileSource(src string) ([]CompiledLoop, error) { return frontend.Compile(src) }
