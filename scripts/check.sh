#!/bin/sh
# Full tier-1 gate: build, vet, tests, a race pass over the concurrent
# packages, and the lint gate.
# Run from the repository root:  sh scripts/check.sh
set -eu

go build ./...
go vet ./...
go test ./...
# Static determinism/zero-alloc gate: schedvet must run clean over the
# whole module (an //schedvet:alloc-free function gaining an allocation
# or a critical package gaining an unordered map range fails here).
go run ./cmd/schedvet ./...
# Race pass over every package that runs goroutines (worker pools,
# shared observers, the daemon and its cache, the speculative II
# search and batch sharding) plus the public API that feeds them, and
# the assignment engine's differential/fuzz-seed tests.
go test -race ./internal/pool/ ./internal/obs/ ./internal/experiments/ ./internal/explore/ ./internal/cache/ ./internal/server/ ./internal/assign/ ./internal/pipeline/ ./internal/compile/ .
# Compile-corpus oracle: every kernel the streaming executor emits for
# the regression corpus must execute functionally identical to the
# naive non-pipelined loop (sim cross-validation plus the Livermore
# value-differential, across two machine configs).
go test -run 'TestCorpusSchedulesAndSimValidates|TestLivermoreValueDifferential' -count=1 ./internal/compile/
# Short benchmark smoke pass: the assignment benchmarks and the
# session/batch benchmarks must still run (allocation regressions fail
# in the test pass above; this catches benchmarks broken by API drift).
go test -run xxx -bench . -benchtime 2x ./internal/assign/
go test -run xxx -bench 'BenchmarkRunBatch|BenchmarkSessionSchedule' -benchtime 1x ./internal/pipeline/
# Baseline-gate smoke: exercises the bench.sh -baseline plumbing (fresh
# runs parsed and diffed against the committed BENCH JSONs) on a short
# suite. The loose tolerance keeps a time-shared host from flaking the
# tier-1 gate; the strict 10% gate is  sh scripts/bench.sh -baseline.
go run ./cmd/clusterbench -baseline -count 60 -benchreps 2 -basetol 5.0
# Fleet kill-a-worker smoke: the multi-process e2e boots a clusterlb
# over three real clusterd processes, SIGKILLs one mid-load, and
# requires every reply to complete byte-identical to a single-node
# oracle with the survivors' caches still warm.
go test -run TestFleetKillWorkerEndToEnd -count=1 ./internal/fleettest/
sh scripts/lint.sh
echo "check: OK"
