#!/bin/sh
# Full tier-1 gate: build, tests, and the lint gate.
# Run from the repository root:  sh scripts/check.sh
set -eu

go build ./...
go test ./...
sh scripts/lint.sh
echo "check: OK"
