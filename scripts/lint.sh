#!/bin/sh
# Repository lint gate: formatting, vet, clusterlint over every shipped
# loop file and every built-in machine configuration, and schedvet over
# the whole module. Both linters fail the gate on any finding.
# Run from the repository root:  sh scripts/lint.sh
set -eu

fail=0

unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

for f in examples/kernels/*.loop; do
    if ! go run ./cmd/clusterlint "$f"; then
        echo "clusterlint: findings in $f" >&2
        fail=1
    fi
done

if ! go run ./cmd/clusterlint -machine builtin >/dev/null; then
    echo "clusterlint: built-in machine configurations are not clean" >&2
    fail=1
fi

if ! go run ./cmd/schedvet ./...; then
    echo "schedvet: determinism/zero-alloc findings in the module" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: OK"
