#!/bin/sh
# Daemon smoke test: start clusterd on a free port, schedule the same
# loop twice through the HTTP API, and assert the second request was a
# cache hit; then check the daemon drains cleanly on SIGTERM.
# Run from the repository root:  sh scripts/serve.sh
set -eu

LOG="$(mktemp)"
BIN="${TMPDIR:-/tmp}/clusterd.smoke"

go build -o "$BIN" ./cmd/clusterd
"$BIN" -addr 127.0.0.1:0 > "$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

URL=""
for _ in $(seq 1 50); do
    URL="$(sed -n 's/^clusterd: listening on \(http:.*\)$/\1/p' "$LOG")"
    [ -n "$URL" ] && break
    sleep 0.1
done
[ -n "$URL" ] || { echo "serve: clusterd did not start"; cat "$LOG"; exit 1; }
echo "serve: daemon at $URL"

# Two identical passes over a tiny suite: every loop must be a cache
# miss the first time and a hit the second. The replay summary reports
# both, so one grep each proves the cache is doing its job.
OUT="$(go run ./cmd/clusterbench -server "$URL" -count 5)"
echo "$OUT"
echo "$OUT" | grep -q '"cold_hits": 0'    || { echo "serve: FAIL: cold pass hit the cache"; exit 1; }
echo "$OUT" | grep -q '"cached_hits": 5'  || { echo "serve: FAIL: warm pass missed the cache"; exit 1; }
echo "$OUT" | grep -q '"cached_failed": 0' || { echo "serve: FAIL: warm pass had errors"; exit 1; }

# Graceful drain: SIGTERM must make the daemon exit by itself.
kill -TERM "$PID"
for _ in $(seq 1 50); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
    echo "serve: FAIL: daemon still running after SIGTERM"
    exit 1
fi
grep -q "drained" "$LOG" || { echo "serve: FAIL: no drain message"; cat "$LOG"; exit 1; }

echo "serve: OK"
