#!/bin/sh
# Pipeline benchmark: times the full scheduling pipeline over the
# synthetic suite via pipeline.RunBatch (per-worker reusable sessions,
# warm-started II search) and writes BENCH_pipeline.json — batch
# throughput as ns/op plus the aggregated search-effort statistics,
# including the ii_warm_starts / ii_warm_fallbacks warm-start counters.
# The workers, warm_start and reps fields of the JSON say how the
# number was produced; -workers 1 -warmstart=off reproduces the
# pre-session sequential baseline. ns_per_op is the fastest of
# -benchreps passes over the suite: the bench hosts are time-shared,
# a single pass is hostage to whatever else holds the CPU, and the
# minimum is the least-interfered estimate (scheduling outcomes are
# deterministic, so repetition changes timing only).
# Run from the repository root:  sh scripts/bench.sh [count]
#
# Baseline mode:  sh scripts/bench.sh -baseline [count]
# Re-measures the assignment and pipeline suites (fastest of several
# passes) and diffs them against the committed BENCH_assign.json /
# BENCH_pipeline.json, exiting non-zero on a >10% regression of the
# assignment ns_per_op rows or the pipeline ns_per_op / assign_ns.
set -eu

if [ "${1:-}" = "-baseline" ]; then
    shift
    COUNT="${1:-400}"
    exec go run ./cmd/clusterbench -baseline -count "$COUNT" -benchreps 10
fi

COUNT="${1:-400}"
OUT="BENCH_pipeline.json"

go run ./cmd/clusterbench -benchjson -benchreps 10 -count "$COUNT" > "$OUT"
echo "bench: wrote $OUT"

# Assignment-only benchmark: the incremental-engine suite (ns/op per
# machine plus the deltas/full-derives work counters).
ASSIGN_OUT="BENCH_assign.json"
go run ./cmd/clusterbench -assignjson -count "$COUNT" > "$ASSIGN_OUT"
echo "bench: wrote $ASSIGN_OUT"

# The Go benchmarks for the zero-cost observer path; BenchmarkSchedule
# (no observer) against BenchmarkScheduleObserved is the overhead.
go test -run xxx -bench 'BenchmarkSchedule$|BenchmarkScheduleObserved$' -benchtime 300x .

# Daemon benchmark: replay the suite against a freshly started
# clusterd (cold pass, then a fully cached pass) and record the
# cached-vs-uncached throughput in BENCH_server.json.
SERVER_OUT="BENCH_server.json"
SERVER_LOG="$(mktemp)"
go build -o "${TMPDIR:-/tmp}/clusterd.bench" ./cmd/clusterd
"${TMPDIR:-/tmp}/clusterd.bench" -addr 127.0.0.1:0 > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
URL=""
for _ in $(seq 1 50); do
    URL="$(sed -n 's/^clusterd: listening on \(http:.*\)$/\1/p' "$SERVER_LOG")"
    [ -n "$URL" ] && break
    sleep 0.1
done
[ -n "$URL" ] || { echo "bench: clusterd did not start"; cat "$SERVER_LOG"; exit 1; }
go run ./cmd/clusterbench -server "$URL" -count "$COUNT" > "$SERVER_OUT"
kill "$SERVER_PID"
echo "bench: wrote $SERVER_OUT"
