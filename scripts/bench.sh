#!/bin/sh
# Pipeline benchmark: times the full scheduling pipeline over the
# synthetic suite and writes BENCH_pipeline.json (ns/op plus the
# aggregated search-effort statistics).
# Run from the repository root:  sh scripts/bench.sh [count]
set -eu

COUNT="${1:-400}"
OUT="BENCH_pipeline.json"

go run ./cmd/clusterbench -benchjson -count "$COUNT" > "$OUT"
echo "bench: wrote $OUT"

# The Go benchmarks for the zero-cost observer path; BenchmarkSchedule
# (no observer) against BenchmarkScheduleObserved is the overhead.
go test -run xxx -bench 'BenchmarkSchedule$|BenchmarkScheduleObserved$' -benchtime 300x .
