#!/bin/sh
# Pipeline benchmark: times the full scheduling pipeline over the
# synthetic suite via pipeline.RunBatch (per-worker reusable sessions,
# warm-started II search) and writes BENCH_pipeline.json — batch
# throughput as ns/op plus the aggregated search-effort statistics,
# including the ii_warm_starts / ii_warm_fallbacks warm-start counters.
# The workers, warm_start and reps fields of the JSON say how the
# number was produced; -workers 1 -warmstart=off reproduces the
# pre-session sequential baseline. ns_per_op is the fastest of
# -benchreps passes over the suite: the bench hosts are time-shared,
# a single pass is hostage to whatever else holds the CPU, and the
# minimum is the least-interfered estimate (scheduling outcomes are
# deterministic, so repetition changes timing only).
# Run from the repository root:  sh scripts/bench.sh [count]
#
# Baseline mode:  sh scripts/bench.sh -baseline [count]
# Re-measures the assignment and pipeline suites (fastest of several
# passes) and diffs them against the committed BENCH_assign.json /
# BENCH_pipeline.json, exiting non-zero on a >10% regression of the
# assignment ns_per_op rows or the pipeline ns_per_op / assign_ns.
#
# Trend mode:  sh scripts/bench.sh -trend [count]
# Re-measures the assignment and pipeline suites and appends one dated
# JSON line per suite — {date, sha, suite, ns_per_op} — to
# BENCH_TREND.jsonl, the long-run performance log the point-in-time
# baseline gate cannot provide.
#
# Compile mode:  sh scripts/bench.sh -compile
# Times the whole-TU streaming compile path (clusterc -O) over the
# checked-in regression corpus — Livermore kernels plus the fuzz-mined
# loopgen set — and writes BENCH_compile.json: per-loop cold-start
# ns/op, streaming ns/op at 1 and 4 workers with per-stage breakdowns,
# and the two speedup ratios. The corpus is sim cross-validated before
# any timing, and the cpus field records the core count the w4/w1
# ratio was measured on (on a single-core host it is honestly ~1).
#
# Fleet mode:  sh scripts/bench.sh -fleet [count]
# Boots three local clusterd workers plus a clusterlb in front of
# them, replays the suite through the balancer (cold pass, cached
# pass), and writes BENCH_fleet.json — p50/p99 latency for each pass
# plus the hedge win rate and failover counters. When a committed
# BENCH_fleet.json exists the fresh cached p50 is diffed against it
# under the same regression gate as -baseline.
set -eu

if [ "${1:-}" = "-baseline" ]; then
    shift
    COUNT="${1:-400}"
    exec go run ./cmd/clusterbench -baseline -count "$COUNT" -benchreps 10
fi

if [ "${1:-}" = "-trend" ]; then
    shift
    COUNT="${1:-400}"
    TREND_OUT="BENCH_TREND.jsonl"
    SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    # Write to a temp file first so a failed run never truncates or
    # half-appends to the committed log.
    go run ./cmd/clusterbench -trend -trendsha "$SHA" -count "$COUNT" -benchreps 10 > "$TREND_OUT.tmp"
    cat "$TREND_OUT.tmp" >> "$TREND_OUT"
    rm -f "$TREND_OUT.tmp"
    echo "bench: appended $(wc -l < "$TREND_OUT" | tr -d ' ') total rows to $TREND_OUT"
    exit 0
fi

if [ "${1:-}" = "-compile" ]; then
    COMPILE_OUT="BENCH_compile.json"
    # Write to a temp file first: a failed pass (a corpus loop losing
    # its schedule or sim validation) must not truncate the committed
    # numbers the -baseline gate diffs against.
    go run ./cmd/clusterbench -compilejson -benchreps 10 > "$COMPILE_OUT.tmp"
    mv "$COMPILE_OUT.tmp" "$COMPILE_OUT"
    echo "bench: wrote $COMPILE_OUT"
    exit 0
fi

if [ "${1:-}" = "-fleet" ]; then
    shift
    COUNT="${1:-400}"
    FLEET_OUT="BENCH_fleet.json"
    BIN="${TMPDIR:-/tmp}/clustersched.bench"
    mkdir -p "$BIN"
    go build -o "$BIN/clusterd" ./cmd/clusterd
    go build -o "$BIN/clusterlb" ./cmd/clusterlb
    WLOG1="$(mktemp)"; WLOG2="$(mktemp)"; WLOG3="$(mktemp)"; LBLOG="$(mktemp)"
    "$BIN/clusterd" -addr 127.0.0.1:0 > "$WLOG1" 2>&1 & W1=$!
    "$BIN/clusterd" -addr 127.0.0.1:0 > "$WLOG2" 2>&1 & W2=$!
    "$BIN/clusterd" -addr 127.0.0.1:0 > "$WLOG3" 2>&1 & W3=$!
    trap 'kill $W1 $W2 $W3 ${LB:-} 2>/dev/null || true' EXIT
    wait_url() { # logfile prefix -> prints URL
        for _ in $(seq 1 50); do
            U="$(sed -n "s/^$2: listening on \(http:.*\)$/\1/p" "$1")"
            [ -n "$U" ] && { echo "$U"; return 0; }
            sleep 0.1
        done
        return 1
    }
    U1="$(wait_url "$WLOG1" clusterd)" || { echo "bench: worker 1 did not start"; cat "$WLOG1"; exit 1; }
    U2="$(wait_url "$WLOG2" clusterd)" || { echo "bench: worker 2 did not start"; cat "$WLOG2"; exit 1; }
    U3="$(wait_url "$WLOG3" clusterd)" || { echo "bench: worker 3 did not start"; cat "$WLOG3"; exit 1; }
    "$BIN/clusterlb" -addr 127.0.0.1:0 -workers "$U1,$U2,$U3" > "$LBLOG" 2>&1 & LB=$!
    LBURL="$(wait_url "$LBLOG" clusterlb)" || { echo "bench: clusterlb did not start"; cat "$LBLOG"; exit 1; }
    # Write to a temp file first: the gate inside clusterbench diffs
    # against the committed $FLEET_OUT, which a direct redirect would
    # truncate before the run. On a gate failure the committed file
    # survives untouched.
    go run ./cmd/clusterbench -fleet "$LBURL" -count "$COUNT" -benchreps 10 > "$FLEET_OUT.tmp"
    mv "$FLEET_OUT.tmp" "$FLEET_OUT"
    kill $W1 $W2 $W3 $LB 2>/dev/null || true
    echo "bench: wrote $FLEET_OUT"
    exit 0
fi

COUNT="${1:-400}"
OUT="BENCH_pipeline.json"

# -spec 4 adds the speculative section: the same suite re-run with a
# 4-way speculative II probe, with the ii_speculative_wins / _wasted
# counters recorded under measurement and the outcome asserted
# identical to the sequential search.
go run ./cmd/clusterbench -benchjson -spec 4 -benchreps 10 -count "$COUNT" > "$OUT"
echo "bench: wrote $OUT"

# Assignment-only benchmark: the incremental-engine suite (ns/op per
# machine plus the deltas/full-derives work counters).
ASSIGN_OUT="BENCH_assign.json"
go run ./cmd/clusterbench -assignjson -count "$COUNT" > "$ASSIGN_OUT"
echo "bench: wrote $ASSIGN_OUT"

# The Go benchmarks for the zero-cost observer path; BenchmarkSchedule
# (no observer) against BenchmarkScheduleObserved is the overhead.
go test -run xxx -bench 'BenchmarkSchedule$|BenchmarkScheduleObserved$' -benchtime 300x .

# Daemon benchmark: replay the suite against a freshly started
# clusterd (cold pass, then a fully cached pass) and record the
# cached-vs-uncached throughput in BENCH_server.json.
SERVER_OUT="BENCH_server.json"
SERVER_LOG="$(mktemp)"
go build -o "${TMPDIR:-/tmp}/clusterd.bench" ./cmd/clusterd
"${TMPDIR:-/tmp}/clusterd.bench" -addr 127.0.0.1:0 > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
URL=""
for _ in $(seq 1 50); do
    URL="$(sed -n 's/^clusterd: listening on \(http:.*\)$/\1/p' "$SERVER_LOG")"
    [ -n "$URL" ] && break
    sleep 0.1
done
[ -n "$URL" ] || { echo "bench: clusterd did not start"; cat "$SERVER_LOG"; exit 1; }
go run ./cmd/clusterbench -server "$URL" -count "$COUNT" > "$SERVER_OUT"
kill "$SERVER_PID"
echo "bench: wrote $SERVER_OUT"
