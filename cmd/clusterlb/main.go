// Clusterlb is the fleet front end: an HTTP balancer fanning the
// clusterd API (/v1/schedule, /v1/batch, /v1/lint) out over N
// workers. Schedule requests route to the consistent-hash owner of
// their cache key so repeated requests stay on a warm cache; batch
// and lint place by power-of-k-choices over live queue depths; slow
// schedule requests are hedged to a second worker after a
// p99-derived delay. Worker health is tracked via /fleetz heartbeats
// and transport failures, and a dead worker only remaps the slice of
// keys it owned.
//
// Usage:
//
//	clusterlb -workers http://h1:8425,http://h2:8425,http://h3:8425
//	clusterlb -addr 127.0.0.1:0 -workers ...    # pick a free port (printed)
//	clusterlb -hedge 0.05 -hedge-min 50ms       # tighter hedge budget
//	clusterlb -heartbeat 500ms -k 3             # faster probes, wider choices
//
// GET /healthz answers ok while at least one worker is alive; GET
// /statsz reports placement, hedge, failover, and ring counters plus
// the per-worker membership table (docs/SERVICE.md has the fleet
// deployment guide).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersched/internal/balance"
)

func main() {
	var (
		addr      = flag.String("addr", ":8426", "listen address (host:port; port 0 picks a free one)")
		workers   = flag.String("workers", "", "comma-separated clusterd base URLs (required)")
		k         = flag.Int("k", 2, "power-of-k-choices placement width")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per worker on the cache ring (0 = default)")
		heartbeat = flag.Duration("heartbeat", time.Second, "worker /fleetz poll interval")
		hedge     = flag.Float64("hedge", 0.1, "hedge budget as a fraction of dispatches (0 disables hedging)")
		hedgeMin  = flag.Duration("hedge-min", 20*time.Millisecond, "hedge delay floor (used until p99 is known)")
		timeout   = flag.Duration("timeout", 0, "per-request end-to-end timeout including failover (0 = client-bounded)")
		drain     = flag.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "clusterlb: ", log.LstdFlags)

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	b, err := balance.New(balance.Config{
		Workers:        urls,
		K:              *k,
		VirtualNodes:   *vnodes,
		HeartbeatEvery: *heartbeat,
		HedgeBudget:    *hedge,
		HedgeAfterMin:  *hedgeMin,
		RequestTimeout: *timeout,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	srv := &http.Server{
		Handler:           b,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The smoke and bench scripts parse this line to find the port.
	fmt.Printf("clusterlb: listening on http://%s\n", ln.Addr())
	logger.Printf("%d workers, k=%d, heartbeat %v, hedge %.2f (min %v)",
		len(urls), *k, *heartbeat, *hedge, *hedgeMin)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go b.Run(ctx)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	logger.Printf("drained, bye")
}
