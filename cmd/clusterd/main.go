// Clusterd is the scheduling daemon: a long-running HTTP service in
// front of the clustersched pipeline with a content-addressed result
// cache, request coalescing, bounded concurrency with 429
// backpressure, and graceful drain.
//
// Usage:
//
//	clusterd                              # listen on :8425
//	clusterd -addr 127.0.0.1:0            # pick a free port (printed)
//	clusterd -cache-mb 256 -timeout 30s   # bigger cache, bounded runs
//	clusterd -max-inflight 64             # admit at most 64 requests
//	clusterd -trace events.jsonl          # stream pipeline trace events
//
// The API (POST /v1/schedule, /v1/batch, /v1/compile, /v1/lint; GET
// /healthz, /statsz) is documented in docs/SERVICE.md. On SIGINT or SIGTERM the
// daemon stops accepting connections, drains in-flight requests for up
// to -drain, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustersched/internal/obs"
	"clustersched/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8425", "listen address (host:port; port 0 picks a free one)")
		cacheMB     = flag.Int("cache-mb", 64, "result cache budget in MiB")
		timeout     = flag.Duration("timeout", 0, "per-request schedule timeout (0 = bounded only by the client)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently admitted requests before 429 (0 = 4 x GOMAXPROCS)")
		workers     = flag.Int("workers", 0, "batch fan-out width (0 = GOMAXPROCS)")
		drain       = flag.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
		trace       = flag.String("trace", "", "stream every pipeline trace event as JSON lines to this file (- for stderr)")
		node        = flag.String("node", "", "node identity reported on /fleetz (default: the listen address)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "clusterd: ", log.LstdFlags)

	cfg := server.Config{
		CacheBytes:  int64(*cacheMB) << 20,
		Timeout:     *timeout,
		MaxInflight: *maxInflight,
		Workers:     *workers,
		NodeID:      *node,
	}
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				logger.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		cfg.Observer = obs.NewJSON(w)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	if cfg.NodeID == "" {
		cfg.NodeID = ln.Addr().String()
	}
	srv := &http.Server{
		Handler:           server.New(cfg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The smoke and bench scripts parse this line to find the port.
	fmt.Printf("clusterd: listening on http://%s\n", ln.Addr())
	logger.Printf("cache %d MiB, timeout %v, max in-flight %d",
		*cacheMB, *timeout, *maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	logger.Printf("drained, bye")
}
