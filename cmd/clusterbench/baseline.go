package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/compile"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
)

// Baseline mode (scripts/bench.sh -baseline): re-measure the
// assignment and pipeline suites and diff them against the committed
// BENCH_assign.json / BENCH_pipeline.json, exiting non-zero when a
// fresh number regresses past the tolerance. Timings on a time-shared
// host are hostage to the neighbours, so every fresh number is the
// minimum over -benchreps passes — the least-interfered estimate —
// and the tolerance is multiplicative headroom on top of that.

// committedAssign is the subset of BENCH_assign.json the gate reads.
type committedAssign struct {
	Rows []struct {
		Machine     string `json:"machine"`
		NSPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	} `json:"rows"`
}

// committedPipeline is the subset of BENCH_pipeline.json the gate
// reads; workers and warm_start pin the fresh run to the committed
// configuration so the comparison is like for like.
type committedPipeline struct {
	Scheduled   int   `json:"scheduled"`
	Workers     int   `json:"workers"`
	WarmStart   bool  `json:"warm_start"`
	NSPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Stats       struct {
		AssignNS int64 `json:"assign_ns"`
	} `json:"stats"`
}

// committedCompile is the subset of BENCH_compile.json the gate reads.
type committedCompile struct {
	PerLoopNSOp int64 `json:"per_loop_ns_per_op"`
	W1          struct {
		NSPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	} `json:"w1"`
	W4 struct {
		NSPerOp int64 `json:"ns_per_op"`
	} `json:"w4"`
}

// baselineRun compares fresh suite timings against the committed
// benchmark JSONs. reps is the number of passes per measurement (the
// minimum wins); tol is the allowed fractional regression (0.10 = 10%).
func baselineRun(ctx context.Context, loops []*ddg.Graph, scheduler pipeline.Scheduler, reps int, tol float64) error {
	var ca committedAssign
	if err := readJSON("BENCH_assign.json", &ca); err != nil {
		return err
	}
	var cp committedPipeline
	if err := readJSON("BENCH_pipeline.json", &cp); err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}

	committed := make(map[string]int64, len(ca.Rows))
	for _, r := range ca.Rows {
		committed[r.Machine] = r.NSPerOp
	}

	failed := false
	check := func(what string, fresh, base int64) {
		limit := int64(float64(base) * (1 + tol))
		verdict := "ok"
		if fresh > limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("baseline: %-28s %10d ns fresh vs %10d committed (%.2fx, limit %d): %s\n",
			what, fresh, base, float64(fresh)/float64(base), limit, verdict)
	}

	committedAllocs := make(map[string]int64, len(ca.Rows))
	for _, r := range ca.Rows {
		committedAllocs[r.Machine] = r.AllocsPerOp
	}

	for _, m := range assignMachines() {
		base, ok := committed[m.Name]
		if !ok {
			return fmt.Errorf("baseline: machine %s missing from BENCH_assign.json", m.Name)
		}
		fresh, err := measureAssign(ctx, loops, m, reps)
		if err != nil {
			return err
		}
		check("assign "+m.Name+" ns_per_op", fresh.nsPerOp, base)
		// Allocation counts are deterministic, so they get the same
		// multiplicative gate; a committed 0 means the field predates
		// the measurement and is skipped.
		if base := committedAllocs[m.Name]; base > 0 {
			check("assign "+m.Name+" allocs_per_op", fresh.allocsPerOp, base)
		}
	}

	fresh, err := measurePipeline(ctx, loops, scheduler, cp.Workers, cp.WarmStart, reps)
	if err != nil {
		return err
	}
	check("pipeline ns_per_op", fresh.nsPerOp, cp.NSPerOp)
	if cp.AllocsPerOp > 0 {
		check("pipeline allocs_per_op", fresh.allocsPerOp, cp.AllocsPerOp)
	}
	// assign_ns is a suite total, so scale the committed number to the
	// fresh run's scheduled-loop count (they differ when -count does).
	if cp.Scheduled > 0 {
		check("pipeline assign_ns", fresh.assignNS, cp.Stats.AssignNS*int64(fresh.scheduled)/int64(cp.Scheduled))
	}

	var cc committedCompile
	if err := readJSON("BENCH_compile.json", &cc); err != nil {
		return err
	}
	corpus, err := compile.Corpus()
	if err != nil {
		return err
	}
	perLoop, err := measureCompilePerLoop(ctx, corpus, reps)
	if err != nil {
		return err
	}
	check("compile per_loop ns_per_op", perLoop, cc.PerLoopNSOp)
	w1, err := measureCompileStream(ctx, corpus, 1, reps)
	if err != nil {
		return err
	}
	check("compile w1 ns_per_op", w1.NSPerOp, cc.W1.NSPerOp)
	if cc.W1.AllocsPerOp > 0 {
		check("compile w1 allocs_per_op", w1.AllocsPerOp, cc.W1.AllocsPerOp)
	}
	w4, err := measureCompileStream(ctx, corpus, 4, reps)
	if err != nil {
		return err
	}
	check("compile w4 ns_per_op", w4.NSPerOp, cc.W4.NSPerOp)

	if failed {
		return fmt.Errorf("baseline: regression beyond %.0f%% tolerance", tol*100)
	}
	return nil
}

// measurement is one suite's fastest-pass numbers: wall-clock and the
// runtime allocation counters, both per scheduled/assigned loop. The
// allocation counters come from runtime.ReadMemStats deltas taken
// outside the timing window (Mallocs and TotalAlloc are monotonic, so
// GC activity cannot deflate them), and like the timings each is the
// minimum across passes — the least-interfered estimate.
type measurement struct {
	nsPerOp     int64
	allocsPerOp int64
	bytesPerOp  int64
	assignNS    int64
	scheduled   int
}

// memCounters snapshots the cumulative allocation counters.
func memCounters() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// measureAssign times the assignment-only suite on one machine,
// returning the fastest-pass ns and allocations per assigned loop.
func measureAssign(ctx context.Context, loops []*ddg.Graph, m *machine.Config, reps int) (measurement, error) {
	iis := make([]int, len(loops))
	for i, g := range loops {
		iis[i] = mii.MII(g, m)
	}
	var out measurement
	var best time.Duration
	var bestAllocs, bestBytes uint64
	assigned := 0
	for r := 0; r < reps; r++ {
		n := 0
		m0, b0 := memCounters()
		start := time.Now()
		for i, g := range loops {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			if _, ok := assign.Run(g, m, iis[i], assign.Options{Variant: assign.HeuristicIterative}); ok {
				n++
			}
		}
		d := time.Since(start)
		m1, b1 := memCounters()
		if r == 0 || d < best {
			best = d
		}
		if r == 0 || m1-m0 < bestAllocs {
			bestAllocs = m1 - m0
		}
		if r == 0 || b1-b0 < bestBytes {
			bestBytes = b1 - b0
		}
		assigned = n
	}
	if assigned == 0 {
		return out, fmt.Errorf("baseline: no loop assigned on %s", m.Name)
	}
	out.nsPerOp = best.Nanoseconds() / int64(assigned)
	out.allocsPerOp = int64(bestAllocs) / int64(assigned)
	out.bytesPerOp = int64(bestBytes) / int64(assigned)
	return out, nil
}

// measurePipeline times the full-pipeline suite in the committed
// configuration, returning the fastest-pass ns/op, allocation
// counters, and assign_ns.
func measurePipeline(ctx context.Context, loops []*ddg.Graph, scheduler pipeline.Scheduler, workers int, warm bool, reps int) (measurement, error) {
	popts := pipeline.Options{
		Assign:           assign.Options{Variant: assign.HeuristicIterative},
		Scheduler:        scheduler,
		CollectStats:     true,
		DisableWarmStart: !warm,
	}
	if workers <= 0 {
		workers = 1
	}
	var out measurement
	var best time.Duration
	var bestAssign int64
	var bestAllocs, bestBytes uint64
	for r := 0; r < reps; r++ {
		m0, b0 := memCounters()
		start := time.Now()
		results := pipeline.RunBatch(ctx, loops, m2c(), popts, workers)
		d := time.Since(start)
		m1, b1 := memCounters()
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		var agg obs.Stats
		n := 0
		for _, res := range results {
			if res.Err != nil || res.Outcome == nil {
				continue
			}
			agg.Add(res.Outcome.Stats)
			n++
		}
		if r == 0 || d < best {
			best = d
		}
		if a := int64(agg.AssignTime); r == 0 || a < bestAssign {
			bestAssign = a
		}
		if r == 0 || m1-m0 < bestAllocs {
			bestAllocs = m1 - m0
		}
		if r == 0 || b1-b0 < bestBytes {
			bestBytes = b1 - b0
		}
		out.scheduled = n
	}
	if out.scheduled == 0 {
		return out, fmt.Errorf("baseline: no loop scheduled")
	}
	out.nsPerOp = best.Nanoseconds() / int64(out.scheduled)
	out.allocsPerOp = int64(bestAllocs) / int64(out.scheduled)
	out.bytesPerOp = int64(bestBytes) / int64(out.scheduled)
	out.assignNS = bestAssign
	return out, nil
}

// assignMachines is the machine set of the assignment suite, shared
// with assignJSON so the committed rows always match.
func assignMachines() []*machine.Config {
	return []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewGrid4(2),
	}
}

// m2c is the pipeline-suite machine, shared with benchJSON.
func m2c() *machine.Config { return machine.NewBusedGP(2, 2, 1) }

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w (run scripts/bench.sh from the repository root)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("baseline: %s: %w", path, err)
	}
	return nil
}
