package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/ddg"
	"clustersched/internal/machine"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
)

// Baseline mode (scripts/bench.sh -baseline): re-measure the
// assignment and pipeline suites and diff them against the committed
// BENCH_assign.json / BENCH_pipeline.json, exiting non-zero when a
// fresh number regresses past the tolerance. Timings on a time-shared
// host are hostage to the neighbours, so every fresh number is the
// minimum over -benchreps passes — the least-interfered estimate —
// and the tolerance is multiplicative headroom on top of that.

// committedAssign is the subset of BENCH_assign.json the gate reads.
type committedAssign struct {
	Rows []struct {
		Machine string `json:"machine"`
		NSPerOp int64  `json:"ns_per_op"`
	} `json:"rows"`
}

// committedPipeline is the subset of BENCH_pipeline.json the gate
// reads; workers and warm_start pin the fresh run to the committed
// configuration so the comparison is like for like.
type committedPipeline struct {
	Scheduled int   `json:"scheduled"`
	Workers   int   `json:"workers"`
	WarmStart bool  `json:"warm_start"`
	NSPerOp   int64 `json:"ns_per_op"`
	Stats     struct {
		AssignNS int64 `json:"assign_ns"`
	} `json:"stats"`
}

// baselineRun compares fresh suite timings against the committed
// benchmark JSONs. reps is the number of passes per measurement (the
// minimum wins); tol is the allowed fractional regression (0.10 = 10%).
func baselineRun(ctx context.Context, loops []*ddg.Graph, scheduler pipeline.Scheduler, reps int, tol float64) error {
	var ca committedAssign
	if err := readJSON("BENCH_assign.json", &ca); err != nil {
		return err
	}
	var cp committedPipeline
	if err := readJSON("BENCH_pipeline.json", &cp); err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}

	committed := make(map[string]int64, len(ca.Rows))
	for _, r := range ca.Rows {
		committed[r.Machine] = r.NSPerOp
	}

	failed := false
	check := func(what string, fresh, base int64) {
		limit := int64(float64(base) * (1 + tol))
		verdict := "ok"
		if fresh > limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("baseline: %-28s %10d ns fresh vs %10d committed (%.2fx, limit %d): %s\n",
			what, fresh, base, float64(fresh)/float64(base), limit, verdict)
	}

	for _, m := range assignMachines() {
		base, ok := committed[m.Name]
		if !ok {
			return fmt.Errorf("baseline: machine %s missing from BENCH_assign.json", m.Name)
		}
		fresh, err := measureAssign(ctx, loops, m, reps)
		if err != nil {
			return err
		}
		check("assign "+m.Name+" ns_per_op", fresh, base)
	}

	nsPerOp, assignNS, scheduled, err := measurePipeline(ctx, loops, scheduler, cp.Workers, cp.WarmStart, reps)
	if err != nil {
		return err
	}
	check("pipeline ns_per_op", nsPerOp, cp.NSPerOp)
	// assign_ns is a suite total, so scale the committed number to the
	// fresh run's scheduled-loop count (they differ when -count does).
	if cp.Scheduled > 0 {
		check("pipeline assign_ns", assignNS, cp.Stats.AssignNS*int64(scheduled)/int64(cp.Scheduled))
	}

	if failed {
		return fmt.Errorf("baseline: regression beyond %.0f%% tolerance", tol*100)
	}
	return nil
}

// measureAssign times the assignment-only suite on one machine,
// returning the fastest-pass ns per assigned loop.
func measureAssign(ctx context.Context, loops []*ddg.Graph, m *machine.Config, reps int) (int64, error) {
	iis := make([]int, len(loops))
	for i, g := range loops {
		iis[i] = mii.MII(g, m)
	}
	var best time.Duration
	assigned := 0
	for r := 0; r < reps; r++ {
		n := 0
		start := time.Now()
		for i, g := range loops {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			if _, ok := assign.Run(g, m, iis[i], assign.Options{Variant: assign.HeuristicIterative}); ok {
				n++
			}
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
		assigned = n
	}
	if assigned == 0 {
		return 0, fmt.Errorf("baseline: no loop assigned on %s", m.Name)
	}
	return best.Nanoseconds() / int64(assigned), nil
}

// measurePipeline times the full-pipeline suite in the committed
// configuration, returning the fastest-pass ns/op and assign_ns.
func measurePipeline(ctx context.Context, loops []*ddg.Graph, scheduler pipeline.Scheduler, workers int, warm bool, reps int) (nsPerOp, assignNS int64, scheduled int, err error) {
	popts := pipeline.Options{
		Assign:           assign.Options{Variant: assign.HeuristicIterative},
		Scheduler:        scheduler,
		CollectStats:     true,
		DisableWarmStart: !warm,
	}
	if workers <= 0 {
		workers = 1
	}
	var best time.Duration
	var bestAssign int64
	for r := 0; r < reps; r++ {
		start := time.Now()
		results := pipeline.RunBatch(ctx, loops, m2c(), popts, workers)
		d := time.Since(start)
		if ctx.Err() != nil {
			return 0, 0, 0, ctx.Err()
		}
		var agg obs.Stats
		n := 0
		for _, res := range results {
			if res.Err != nil || res.Outcome == nil {
				continue
			}
			agg.Add(res.Outcome.Stats)
			n++
		}
		if r == 0 || d < best {
			best = d
		}
		if a := int64(agg.AssignTime); r == 0 || a < bestAssign {
			bestAssign = a
		}
		scheduled = n
	}
	if scheduled == 0 {
		return 0, 0, 0, fmt.Errorf("baseline: no loop scheduled")
	}
	return best.Nanoseconds() / int64(scheduled), bestAssign, scheduled, nil
}

// assignMachines is the machine set of the assignment suite, shared
// with assignJSON so the committed rows always match.
func assignMachines() []*machine.Config {
	return []*machine.Config{
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewGrid4(2),
	}
}

// m2c is the pipeline-suite machine, shared with benchJSON.
func m2c() *machine.Config { return machine.NewBusedGP(2, 2, 1) }

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w (run scripts/bench.sh from the repository root)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("baseline: %s: %w", path, err)
	}
	return nil
}
