package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"clustersched/internal/balance"
	"clustersched/internal/client"
	"clustersched/internal/ddg"
	"clustersched/internal/ddgio"
	"clustersched/internal/server"
)

// Fleet mode (scripts/bench.sh -fleet): replay the synthetic suite
// through a running clusterlb — one cold pass, one identical cached
// pass — and emit a JSON summary with per-request latency quantiles
// and the balancer's hedge/failover counters. scripts/bench.sh
// redirects this into BENCH_fleet.json; when a committed
// BENCH_fleet.json exists, the fresh cached p99 is also diffed
// against it under -basetol, same contract as -baseline.

// fleetSummary is the BENCH_fleet.json shape.
type fleetSummary struct {
	Name    string `json:"name"`
	Fleet   string `json:"fleet"`
	Machine string `json:"machine"`
	Loops   int    `json:"loops"`
	Workers int    `json:"workers"`

	ColdP50NS    int64   `json:"cold_p50_ns"`
	ColdP99NS    int64   `json:"cold_p99_ns"`
	ColdRPS      float64 `json:"cold_rps"`
	ColdFailed   int     `json:"cold_failed"`
	CachedP50NS  int64   `json:"cached_p50_ns"`
	CachedP99NS  int64   `json:"cached_p99_ns"`
	CachedRPS    float64 `json:"cached_rps"`
	CachedHits   int     `json:"cached_hits"`
	CachedFailed int     `json:"cached_failed"`

	Hedges         int64   `json:"hedges"`
	HedgeWins      int64   `json:"hedge_wins"`
	HedgeWinRate   float64 `json:"hedge_win_rate"`
	Failovers      int64   `json:"failovers"`
	RingRouted     int64   `json:"ring_routed"`
	ChoiceRouted   int64   `json:"choice_routed"`
	RingRebalances int64   `json:"ring_rebalances"`
}

// fleetReplay drives a running clusterlb with the synthetic suite and
// writes the summary JSON to stdout. The cold pass runs once (a
// repeat would be cached); the cached pass runs reps times and each
// request's latency is its minimum across passes — the
// least-interfered estimate, same reasoning as -benchjson. With a
// committed BENCH_fleet.json present the cached p50 is gated against
// it (tol as in -baseline); requireBase errors if the committed file
// is missing, used when -basetol was passed explicitly.
func fleetReplay(ctx context.Context, baseURL string, loops []*ddg.Graph, scheduler string, reps int, tol float64, requireBase bool) error {
	c := client.New(baseURL, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("no clusterlb at %s: %w", baseURL, err)
	}

	reqs := make([]server.ScheduleRequest, len(loops))
	for i, g := range loops {
		var buf strings.Builder
		if err := ddgio.Write(&buf, fmt.Sprintf("loop%d", i), g); err != nil {
			return err
		}
		reqs[i] = server.ScheduleRequest{DDG: buf.String(), Machine: "gp:2:2:1", Scheduler: scheduler}
	}

	pass := func() (lat []time.Duration, elapsed time.Duration, hits, failed int, err error) {
		lat = make([]time.Duration, 0, len(reqs))
		start := time.Now()
		for _, req := range reqs {
			if ctx.Err() != nil {
				return nil, 0, 0, 0, ctx.Err()
			}
			t0 := time.Now()
			_, cached, err := c.Schedule(ctx, req)
			lat = append(lat, time.Since(t0))
			switch {
			case err == nil && cached:
				hits++
			case err != nil:
				// Unschedulable synthetic loops fail identically in both
				// passes and on a single node; transport errors through a
				// healthy balancer would fail the gate via the quantiles.
				failed++
			}
		}
		return lat, time.Since(start), hits, failed, nil
	}

	coldLat, coldNS, _, coldFailed, err := pass()
	if err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}
	var (
		cachedLat    []time.Duration
		cachedNS     time.Duration
		cachedHits   int
		cachedFailed int
	)
	for r := 0; r < reps; r++ {
		lat, elapsed, hits, failed, err := pass()
		if err != nil {
			return err
		}
		if r == 0 {
			cachedLat = lat
		} else {
			for i := range cachedLat {
				if lat[i] < cachedLat[i] {
					cachedLat[i] = lat[i]
				}
			}
		}
		if r == 0 || elapsed < cachedNS {
			cachedNS = elapsed
		}
		cachedHits, cachedFailed = hits, failed
	}

	stats, err := fleetStatsz(ctx, baseURL)
	if err != nil {
		return err
	}

	rps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(len(reqs)) / d.Seconds()
	}
	summary := fleetSummary{
		Name:    "fleet_suite",
		Fleet:   baseURL,
		Machine: "gp:2:2:1",
		Loops:   len(reqs),
		Workers: len(stats.Workers),

		ColdP50NS:  quantileNS(coldLat, 0.50),
		ColdP99NS:  quantileNS(coldLat, 0.99),
		ColdRPS:    rps(coldNS),
		ColdFailed: coldFailed,

		CachedP50NS:  quantileNS(cachedLat, 0.50),
		CachedP99NS:  quantileNS(cachedLat, 0.99),
		CachedRPS:    rps(cachedNS),
		CachedHits:   cachedHits,
		CachedFailed: cachedFailed,

		Hedges:         stats.Fleet.Hedges,
		HedgeWins:      stats.Fleet.HedgeWins,
		Failovers:      stats.Fleet.Failovers,
		RingRouted:     stats.Fleet.RingRouted,
		ChoiceRouted:   stats.Fleet.ChoiceRouted,
		RingRebalances: stats.Fleet.RingRebalances,
	}
	if stats.Fleet.Hedges > 0 {
		summary.HedgeWinRate = float64(stats.Fleet.HedgeWins) / float64(stats.Fleet.Hedges)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		return err
	}
	return fleetGate(summary, tol, requireBase)
}

// fleetGate diffs the fresh cached p50 against the committed
// BENCH_fleet.json, mirroring the -baseline contract: tolerance is
// multiplicative headroom, regression exits non-zero. The gate reads
// the median, not the tail — p99 over a few hundred local requests
// swings far past any usable tolerance on a time-shared host, while
// the median is stable; p99 stays in the JSON for human eyes. A
// missing committed file is an error only when the caller demanded
// the gate.
func fleetGate(fresh fleetSummary, tol float64, requireBase bool) error {
	var committed fleetSummary
	if err := readJSON("BENCH_fleet.json", &committed); err != nil {
		if requireBase {
			return err
		}
		fmt.Fprintln(os.Stderr, "fleet: no committed BENCH_fleet.json, skipping the regression gate")
		return nil
	}
	limit := int64(float64(committed.CachedP50NS) * (1 + tol))
	verdict := "ok"
	if fresh.CachedP50NS > limit {
		verdict = "REGRESSION"
	}
	fmt.Fprintf(os.Stderr, "fleet: cached p50 %10d ns fresh vs %10d committed (%.2fx, limit %d): %s\n",
		fresh.CachedP50NS, committed.CachedP50NS,
		float64(fresh.CachedP50NS)/float64(committed.CachedP50NS), limit, verdict)
	if verdict != "ok" {
		return fmt.Errorf("fleet: cached p50 regression beyond %.0f%% tolerance", tol*100)
	}
	return nil
}

// fleetStatsz fetches and decodes the balancer's /statsz.
func fleetStatsz(ctx context.Context, baseURL string) (*balance.StatszResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: statsz returned %d", resp.StatusCode)
	}
	var stats balance.StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// quantileNS returns the q-quantile of the latency sample in
// nanoseconds (nearest-rank on the sorted copy).
func quantileNS(lat []time.Duration, q float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	buf := append([]time.Duration(nil), lat...)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(len(buf)-1))
	return buf[idx].Nanoseconds()
}
