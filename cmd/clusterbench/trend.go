package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"clustersched/internal/compile"
	"clustersched/internal/ddg"
	"clustersched/internal/pipeline"
)

// Trend mode (scripts/bench.sh -trend): re-measure the assignment and
// pipeline suites exactly like -baseline, but instead of diffing
// against the committed JSONs, emit one compact JSON line per suite —
// date, git SHA, suite name, ns/op — for appending to
// BENCH_TREND.jsonl. The committed baseline files answer "did this
// change regress?"; the trend log answers "where did the time go over
// the project's history", one dated row per bench run per suite.

// trendRow is one BENCH_TREND.jsonl line.
type trendRow struct {
	Date    string `json:"date"`
	SHA     string `json:"sha"`
	Suite   string `json:"suite"`
	NSPerOp int64  `json:"ns_per_op"`
}

// trendRun measures every suite of the baseline gate and writes the
// dated JSONL rows to stdout. sha is recorded verbatim (bench.sh
// passes git rev-parse --short HEAD); the date is UTC so rows sort
// the same no matter which host appended them.
func trendRun(ctx context.Context, loops []*ddg.Graph, scheduler pipeline.Scheduler, workers int, warm bool, reps int, sha string) error {
	if reps < 1 {
		reps = 1
	}
	date := time.Now().UTC().Format("2006-01-02")
	enc := json.NewEncoder(os.Stdout)

	for _, m := range assignMachines() {
		fresh, err := measureAssign(ctx, loops, m, reps)
		if err != nil {
			return err
		}
		if err := enc.Encode(trendRow{
			Date: date, SHA: sha, Suite: "assign/" + m.Name, NSPerOp: fresh.nsPerOp,
		}); err != nil {
			return err
		}
	}

	fresh, err := measurePipeline(ctx, loops, scheduler, workers, warm, reps)
	if err != nil {
		return err
	}
	if err := enc.Encode(trendRow{
		Date: date, SHA: sha, Suite: "pipeline", NSPerOp: fresh.nsPerOp,
	}); err != nil {
		return err
	}

	corpus, err := compile.Corpus()
	if err != nil {
		return err
	}
	for _, w := range []int{1, 4} {
		sec, err := measureCompileStream(ctx, corpus, w, reps)
		if err != nil {
			return err
		}
		if err := enc.Encode(trendRow{
			Date: date, SHA: sha, Suite: fmt.Sprintf("compile/w%d", w), NSPerOp: sec.NSPerOp,
		}); err != nil {
			return err
		}
	}
	return nil
}
