package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/compile"
	"clustersched/internal/frontend"
	"clustersched/internal/pipeline"
)

// Compile-suite mode (scripts/bench.sh -compile): time the whole-TU
// compile path — lint, schedule, stage scheduling, register
// allocation, emission — over the regression corpus (the Livermore
// kernels plus the fuzz-mined loopgen corpus checked into
// internal/compile). Three measurements:
//
//   - per_loop: the cold path, a fresh executor per loop, so every
//     loop pays machine setup and session construction — what running
//     clusterc once per loop costs.
//   - w1: the streaming pipeline with one scheduling worker. The gap
//     to per_loop is the session-reuse and streaming win.
//   - w4: the same pipeline with four scheduling workers. On a
//     multi-core host this is the stage-parallel speedup; the cpus
//     field records how many cores the measurement actually had, and
//     on a single-core host w4/w1 is honestly ~1.
//
// Before any timing, the full corpus runs once with sim
// cross-validation enabled: a kernel that does not execute
// functionally identical to the naive loop fails the bench outright,
// so the committed numbers always describe correct output.

// compileSection is one worker configuration's fastest-pass numbers.
type compileSection struct {
	Workers     int                 `json:"workers"`
	TotalNS     int64               `json:"total_ns"`
	NSPerOp     int64               `json:"ns_per_op"`
	LoopsPerSec float64             `json:"loops_per_sec"`
	AllocsPerOp int64               `json:"allocs_per_op"`
	BytesPerOp  int64               `json:"bytes_per_op"`
	Stages      []compile.StageStat `json:"stages"`
}

// compileOptions is the benchmarked configuration: the facade's
// default scheduling options with stage scheduling on, validation off
// (the untimed validation pass covers correctness).
func compileOptions(workers int) compile.Options {
	return compile.Options{
		Pipeline: pipeline.Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			CollectStats: true,
		},
		Workers:    workers,
		StageSched: true,
	}
}

// measureCompileStream times the streaming pipeline over the corpus
// at one worker count, fastest of reps passes. A fresh executor per
// pass keeps every pass cold-session, like the committed numbers.
func measureCompileStream(ctx context.Context, loops []frontend.Loop, workers, reps int) (compileSection, error) {
	sec := compileSection{Workers: workers}
	var best time.Duration
	var bestAllocs, bestBytes uint64
	compiled := 0
	for r := 0; r < reps; r++ {
		ex := compile.NewExecutor(m2c(), compileOptions(workers))
		m0, b0 := memCounters()
		start := time.Now()
		res, err := ex.Run(ctx, loops)
		d := time.Since(start)
		m1, b1 := memCounters()
		if err != nil {
			return sec, err
		}
		if res.Failed > 0 {
			return sec, fmt.Errorf("compile bench: %d corpus loops failed at workers=%d", res.Failed, workers)
		}
		compiled = res.Scheduled
		if r == 0 || d < best {
			best = d
			sec.Stages = res.Stages
		}
		if r == 0 || m1-m0 < bestAllocs {
			bestAllocs = m1 - m0
		}
		if r == 0 || b1-b0 < bestBytes {
			bestBytes = b1 - b0
		}
	}
	sec.TotalNS = best.Nanoseconds()
	sec.NSPerOp = best.Nanoseconds() / int64(compiled)
	sec.LoopsPerSec = float64(compiled) / best.Seconds()
	sec.AllocsPerOp = int64(bestAllocs) / int64(compiled)
	sec.BytesPerOp = int64(bestBytes) / int64(compiled)
	return sec, nil
}

// measureCompilePerLoop times the cold path: a fresh executor (and so
// fresh sessions) for every loop, fastest of reps passes.
func measureCompilePerLoop(ctx context.Context, loops []frontend.Loop, reps int) (int64, error) {
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, l := range loops {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			lr := compile.NewExecutor(m2c(), compileOptions(1)).One(ctx, l)
			if lr.Err != nil {
				return 0, fmt.Errorf("compile bench: loop %s: %w", l.Name, lr.Err)
			}
		}
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds() / int64(len(loops)), nil
}

// validateCorpus runs the corpus once with sim cross-validation on;
// any kernel whose pipelined execution diverges from the naive loop
// semantics fails the bench.
func validateCorpus(ctx context.Context, loops []frontend.Loop) error {
	opts := compileOptions(0)
	opts.Validate = true
	res, err := compile.NewExecutor(m2c(), opts).Run(ctx, loops)
	if err != nil {
		return err
	}
	for i := range res.Loops {
		if e := res.Loops[i].Err; e != nil {
			return fmt.Errorf("compile bench: corpus validation: %w", e)
		}
	}
	return nil
}

// compileJSON is -compilejson: validate the corpus, measure the three
// configurations, and emit the BENCH_compile.json summary on stdout.
func compileJSON(ctx context.Context, reps int) error {
	loops, err := compile.Corpus()
	if err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}
	if err := validateCorpus(ctx, loops); err != nil {
		return err
	}
	perLoop, err := measureCompilePerLoop(ctx, loops, reps)
	if err != nil {
		return err
	}
	w1, err := measureCompileStream(ctx, loops, 1, reps)
	if err != nil {
		return err
	}
	w4, err := measureCompileStream(ctx, loops, 4, reps)
	if err != nil {
		return err
	}
	summary := struct {
		Name    string `json:"name"`
		Machine string `json:"machine"`
		// CPUs is the core count the measurement ran on: the w4/w1
		// speedup is only meaningful relative to it (on one core the
		// honest expectation is ~1.0).
		CPUs        int            `json:"cpus"`
		Loops       int            `json:"loops"`
		Compiled    int            `json:"compiled"`
		Reps        int            `json:"reps"`
		PerLoopNSOp int64          `json:"per_loop_ns_per_op"`
		W1          compileSection `json:"w1"`
		W4          compileSection `json:"w4"`
		SpeedupW4W1 float64        `json:"speedup_w4_over_w1"`
		SpeedupSess float64        `json:"speedup_stream_over_per_loop"`
	}{
		Name:        "compile_suite",
		Machine:     m2c().Name,
		CPUs:        runtime.NumCPU(),
		Loops:       len(loops),
		Compiled:    len(loops),
		Reps:        reps,
		PerLoopNSOp: perLoop,
		W1:          w1,
		W4:          w4,
		SpeedupW4W1: float64(w1.TotalNS) / float64(w4.TotalNS),
		SpeedupSess: float64(perLoop) / float64(w1.NSPerOp),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}
