package main

import "testing"

// set builds the explicitly-set-flag map flag.Visit would produce.
func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func codes(t *testing.T, names ...string) []string {
	t.Helper()
	var out []string
	for _, d := range flagConflicts(set(names...)) {
		out = append(out, d.Code)
	}
	return out
}

func TestFlagConflicts(t *testing.T) {
	cases := []struct {
		name  string
		flags []string
		want  []string
	}{
		{"no flags", nil, nil},
		{"one mode", []string{"benchjson"}, nil},
		{"mode with its own options", []string{"benchjson", "benchreps", "workers"}, nil},
		{"experiments with options", []string{"exp", "stats", "workers", "scheduler"}, nil},
		{"profiled local run", []string{"assignjson", "cpuprofile", "memprofile"}, nil},
		{"two modes", []string{"server", "benchjson"}, []string{"CLI001"}},
		{"three modes", []string{"table1", "markdown", "livermore"}, []string{"CLI001"}},
		{"server with cpuprofile", []string{"server", "cpuprofile"}, []string{"CLI002"}},
		{"server with trace and stats", []string{"server", "trace", "stats"}, []string{"CLI002", "CLI002"}},
		{"server with warmstart", []string{"server", "warmstart"}, []string{"CLI002"}},
		{"server keeps scheduler", []string{"server", "scheduler"}, nil},
		{"table1 with scheduler", []string{"table1", "scheduler"}, []string{"CLI003"}},
		{"table1 with exp", []string{"table1", "exp"}, []string{"CLI003"}},
		{"table1 alone", []string{"table1", "seed", "count"}, nil},
		{"benchreps without benchjson", []string{"benchreps"}, []string{"CLI004"}},
		{"baseline with its own options", []string{"baseline", "benchreps", "basetol"}, nil},
		{"baseline with another mode", []string{"baseline", "assignjson"}, []string{"CLI001"}},
		{"basetol without baseline", []string{"basetol"}, []string{"CLI005"}},
		{"fleet with basetol", []string{"fleet", "basetol"}, nil},
		{"fleet with benchreps", []string{"fleet", "benchreps"}, nil},
		{"fleet keeps scheduler", []string{"fleet", "scheduler"}, nil},
		{"fleet with cpuprofile", []string{"fleet", "cpuprofile"}, []string{"CLI002"}},
		{"fleet with another mode", []string{"fleet", "server"}, []string{"CLI001"}},
		{"trend with its own options", []string{"trend", "trendsha", "benchreps"}, nil},
		{"trend with another mode", []string{"trend", "trendsha", "baseline"}, []string{"CLI001"}},
		{"trend without trendsha", []string{"trend"}, []string{"CLI007"}},
		{"trend without trendsha plus mode", []string{"trend", "baseline"}, []string{"CLI001", "CLI007"}},
		{"trendsha without trend", []string{"trendsha"}, []string{"CLI006"}},
		{"spec with benchjson", []string{"benchjson", "spec"}, nil},
		{"spec without benchjson", []string{"spec"}, []string{"CLI008"}},
		{"spec with wrong mode", []string{"assignjson", "spec"}, []string{"CLI008"}},
		{"compilejson mode", []string{"compilejson", "benchreps"}, nil},
		{"compilejson with another mode", []string{"compilejson", "benchjson"}, []string{"CLI001"}},
		{"stacked", []string{"server", "benchjson", "cpuprofile"}, []string{"CLI001", "CLI002"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := codes(t, tc.flags...)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestFlagConflictDiagnostics pins the diagnostic shape: coded, Error
// severity, and carrying a fix, so the CLI output stays actionable.
func TestFlagConflictDiagnostics(t *testing.T) {
	diags := flagConflicts(set("server", "cpuprofile"))
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	d := diags[0]
	if d.Code != "CLI002" || d.Severity.String() != "error" || d.Fix == "" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}
