package main

import (
	"sort"
	"strings"

	"clustersched/internal/diag"
)

// modeFlags are the mutually exclusive run modes of clusterbench; the
// first one the dispatch chain in main recognizes wins, so naming two
// would silently ignore the rest.
var modeFlags = []string{"table1", "server", "fleet", "benchjson", "assignjson", "compilejson", "baseline", "trend", "markdown", "livermore", "registers"}

// flagConflicts validates the combination of explicitly-set flags,
// returning coded diagnostics (CLI001..CLI008, catalogued in
// docs/DIAGNOSTICS.md) for combinations that would silently ignore a
// flag or produce an unattributable measurement. set holds the names
// the user passed on the command line.
func flagConflicts(set map[string]bool) []diag.Diagnostic {
	var diags []diag.Diagnostic
	var modes []string
	for _, m := range modeFlags {
		if set[m] {
			modes = append(modes, "-"+m)
		}
	}
	if len(modes) > 1 {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI001",
			Severity: diag.Error,
			Message:  "flags " + strings.Join(modes, " and ") + " select conflicting run modes",
			Fix:      "pass exactly one run-mode flag",
		})
	}

	for _, mode := range []string{"server", "fleet"} {
		if !set[mode] {
			continue
		}
		for _, f := range []string{"cpuprofile", "memprofile", "trace", "stats", "workers", "warmstart"} {
			if set[f] {
				diags = append(diags, diag.Diagnostic{
					Code:     "CLI002",
					Severity: diag.Error,
					Message:  "-" + f + " has no effect with -" + mode + ": scheduling runs in the daemon process",
					Fix:      "profile or trace the clusterd process instead",
				})
			}
		}
	}

	if set["table1"] {
		for _, f := range []string{"scheduler", "stats", "trace", "warmstart", "workers", "exp"} {
			if set[f] {
				diags = append(diags, diag.Diagnostic{
					Code:     "CLI003",
					Severity: diag.Error,
					Message:  "-" + f + " has no effect with -table1: nothing is scheduled",
					Fix:      "drop -table1 to run the experiments",
				})
			}
		}
	}

	if set["benchreps"] && !set["benchjson"] && !set["compilejson"] && !set["baseline"] && !set["fleet"] && !set["trend"] {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI004",
			Severity: diag.Error,
			Message:  "-benchreps has no effect without -benchjson, -compilejson, -baseline, -fleet, or -trend",
			Fix:      "add -benchjson, -compilejson, -baseline, -fleet, or -trend, or drop -benchreps",
		})
	}

	if set["basetol"] && !set["baseline"] && !set["fleet"] {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI005",
			Severity: diag.Error,
			Message:  "-basetol has no effect without -baseline or -fleet",
			Fix:      "add -baseline or -fleet, or drop -basetol",
		})
	}

	if set["trendsha"] && !set["trend"] {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI006",
			Severity: diag.Error,
			Message:  "-trendsha has no effect without -trend",
			Fix:      "add -trend, or drop -trendsha",
		})
	}

	if set["trend"] && !set["trendsha"] {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI007",
			Severity: diag.Error,
			Message:  "-trend requires -trendsha: a trend row without its git SHA cannot be attributed to a commit",
			Fix:      "pass -trendsha $(git rev-parse --short HEAD)",
		})
	}

	if set["spec"] && !set["benchjson"] {
		diags = append(diags, diag.Diagnostic{
			Code:     "CLI008",
			Severity: diag.Error,
			Message:  "-spec has no effect without -benchjson: speculative probing is measured by the pipeline suite",
			Fix:      "add -benchjson, or drop -spec",
		})
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Code < diags[j].Code })
	return diags
}
