// Clusterbench regenerates the paper's evaluation: every figure and
// table of Section 6, as ΔII histograms of the clustered machines
// against their equally wide unified baselines.
//
// Usage:
//
//	clusterbench                 # run every experiment on the full suite
//	clusterbench -exp fig14      # one experiment
//	clusterbench -count 200      # smaller suite for a quick look
//	clusterbench -scheduler sms  # use the swing modulo scheduler
//	clusterbench -table1         # print the loop-suite statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersched/internal/diag"
	"clustersched/internal/experiments"
	"clustersched/internal/lint"
	livermorepkg "clustersched/internal/livermore"
	"clustersched/internal/loopgen"
	"clustersched/internal/pipeline"
	"clustersched/internal/report"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID to run (fig12..fig19, table3, grid); empty = all")
		seed      = flag.Int64("seed", 1, "loop suite seed")
		count     = flag.Int("count", loopgen.DefaultCount, "number of loops in the suite")
		scheduler = flag.String("scheduler", "ims", "phase-two scheduler: ims or sms")
		table1    = flag.Bool("table1", false, "print Table 1 loop statistics and exit")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		ext       = flag.Bool("ext", false, "run the extension experiments (ablations, ring topology) instead of the paper set")
		registers = flag.Bool("registers", false, "run the register-pressure study and exit")
		csv       = flag.Bool("csv", false, "emit results as CSV instead of tables")
		livermore = flag.Bool("livermore", false, "run the real Livermore-kernel study and exit")
		markdown  = flag.Bool("markdown", false, "emit a full Markdown reproduction report (-ext adds the extension sections)")
	)
	flag.Parse()

	loops := loopgen.Suite(loopgen.Options{Seed: *seed, Count: *count})
	if *table1 {
		fmt.Print(loopgen.Stats(loops).Table())
		return
	}

	opts := experiments.Options{Parallelism: *workers}
	switch strings.ToLower(*scheduler) {
	case "ims":
		opts.Scheduler = pipeline.IMS
	case "sms":
		opts.Scheduler = pipeline.SMS
	default:
		fmt.Fprintf(os.Stderr, "clusterbench: unknown scheduler %q (want ims or sms)\n", *scheduler)
		os.Exit(2)
	}

	if *markdown {
		if err := report.Markdown(os.Stdout, loops, report.Options{Run: opts, Extensions: *ext}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *livermore {
		kernels, err := livermorepkg.Kernels()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := experiments.LivermoreStudy(kernels, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Report())
		return
	}

	if *registers {
		study := experiments.RegisterStudy(loops, opts)
		if *csv {
			fmt.Print(study.CSV())
		} else {
			fmt.Print(study.Report())
		}
		return
	}

	if *exp == "baseline" {
		res := experiments.BaselineComparison(loops, opts)
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Report())
		}
		return
	}
	configs := experiments.All()
	if *ext {
		configs = experiments.Extensions()
	}
	if *exp != "" {
		cfg, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "clusterbench: unknown experiment %q (or 'baseline')\n", *exp)
			os.Exit(2)
		}
		configs = []experiments.Config{cfg}
	}
	// Lint every machine the selected experiments will run before
	// starting: a broken configuration fails fast with diagnostics
	// here instead of mid-run pipeline errors on every loop.
	var machineDiags []diag.Diagnostic
	for _, cfg := range configs {
		for _, row := range cfg.Rows {
			machineDiags = append(machineDiags, lint.Machine(row.Machine)...)
		}
	}
	if diag.CountErrors(machineDiags) > 0 {
		diag.Text(os.Stderr, machineDiags)
		os.Exit(1)
	}
	for _, cfg := range configs {
		var res experiments.Result
		if cfg.ID == "abl-order" {
			// The ordering ablation needs ID-shuffled loops; see the
			// RunOrderingAblation documentation.
			res = experiments.RunOrderingAblation(loops, opts)
		} else {
			res = experiments.Run(cfg, loops, opts)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Report())
		}
	}
}
