// Clusterbench regenerates the paper's evaluation: every figure and
// table of Section 6, as ΔII histograms of the clustered machines
// against their equally wide unified baselines.
//
// Usage:
//
//	clusterbench                 # run every experiment on the full suite
//	clusterbench -exp fig14      # one experiment
//	clusterbench -count 200      # smaller suite for a quick look
//	clusterbench -scheduler sms  # use the swing modulo scheduler
//	clusterbench -table1         # print the loop-suite statistics
//	clusterbench -stats          # add search-effort statistics per row
//	clusterbench -trace ev.json  # stream every pipeline event as JSON lines
//	clusterbench -benchjson      # time the pipeline over the suite, emit JSON
//	clusterbench -benchjson -spec 4   # add a speculative-II-probing section
//	clusterbench -assignjson     # time cluster assignment alone, emit JSON
//	clusterbench -compilejson    # time the whole-TU compile path over the corpus
//	clusterbench -trend -trendsha abc1234   # emit dated trend rows for BENCH_TREND.jsonl
//	clusterbench -cpuprofile p.out -assignjson   # profile a run with pprof
//	clusterbench -server http://127.0.0.1:8425   # replay the suite against clusterd
//
// Ctrl-C cancels the run: in-flight loops finish, no new work starts,
// and the process exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"clustersched/internal/assign"
	"clustersched/internal/client"
	"clustersched/internal/ddg"
	"clustersched/internal/ddgio"
	"clustersched/internal/diag"
	"clustersched/internal/experiments"
	"clustersched/internal/lint"
	livermorepkg "clustersched/internal/livermore"
	"clustersched/internal/loopgen"
	"clustersched/internal/mii"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
	"clustersched/internal/report"
	"clustersched/internal/server"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment ID to run (fig12..fig19, table3, grid); empty = all")
		seed        = flag.Int64("seed", 1, "loop suite seed")
		count       = flag.Int("count", loopgen.DefaultCount, "number of loops in the suite")
		scheduler   = flag.String("scheduler", "ims", "phase-two scheduler: ims or sms")
		table1      = flag.Bool("table1", false, "print Table 1 loop statistics and exit")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		ext         = flag.Bool("ext", false, "run the extension experiments (ablations, ring topology) instead of the paper set")
		registers   = flag.Bool("registers", false, "run the register-pressure study and exit")
		csv         = flag.Bool("csv", false, "emit results as CSV instead of tables")
		livermore   = flag.Bool("livermore", false, "run the real Livermore-kernel study and exit")
		markdown    = flag.Bool("markdown", false, "emit a full Markdown reproduction report (-ext adds the extension sections)")
		statsFlag   = flag.Bool("stats", false, "collect search-effort statistics and print them per row (implied by -trace)")
		trace       = flag.String("trace", "", "write a JSON-lines event stream of every pipeline run to this file (- for stderr)")
		benchjson   = flag.Bool("benchjson", false, "time the pipeline over the suite and emit a JSON summary (ns/op plus aggregated stats) on stdout")
		benchreps   = flag.Int("benchreps", 3, "passes over the suite for -benchjson; ns_per_op reports the fastest pass")
		spec        = flag.Int("spec", 0, "speculative II-probe workers: adds a 'speculative' section to -benchjson measuring the suite again with SpeculativeWorkers=N (IIs asserted identical to the main pass)")
		compilejson = flag.Bool("compilejson", false, "time the whole-TU compile path over the regression corpus (per-loop cold, streaming w1, streaming w4) and emit a JSON summary on stdout")
		warmstart   = flag.String("warmstart", "on", "warm-started II search: on or off (off forces every candidate II to assign from scratch)")
		serverURL   = flag.String("server", "", "replay the suite against a running clusterd at this base URL (cold pass then cached pass) and emit a JSON summary")
		fleetURL    = flag.String("fleet", "", "replay the suite through a running clusterlb at this base URL and emit a JSON summary with latency quantiles and hedge counters; diffs against a committed BENCH_fleet.json under -basetol")
		assignjson  = flag.Bool("assignjson", false, "time cluster assignment alone (no scheduling) over the suite on several machines and emit a JSON summary")
		trend       = flag.Bool("trend", false, "re-measure the assignment and pipeline suites and emit dated JSON lines (one per suite) for appending to BENCH_TREND.jsonl")
		trendsha    = flag.String("trendsha", "", "git SHA recorded in the -trend rows (bench.sh passes git rev-parse --short HEAD)")
		baseline    = flag.Bool("baseline", false, "re-run the assignment and pipeline suites and diff against the committed BENCH_assign.json / BENCH_pipeline.json; non-zero exit on regression past -basetol")
		basetol     = flag.Float64("basetol", 0.10, "allowed fractional regression for -baseline (0.10 = 10%)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	// Reject flag combinations whose extra flags would be silently
	// ignored by the mode dispatch below.
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if conflicts := flagConflicts(setFlags); len(conflicts) > 0 {
		diag.Text(os.Stderr, conflicts)
		os.Exit(2)
	}

	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	loops := loopgen.Suite(loopgen.Options{Seed: *seed, Count: *count})
	if *table1 {
		fmt.Print(loopgen.Stats(loops).Table())
		return
	}

	var warm bool
	switch strings.ToLower(*warmstart) {
	case "on", "":
		warm = true
	case "off":
		warm = false
	default:
		fmt.Fprintf(os.Stderr, "clusterbench: unknown -warmstart %q (want on or off)\n", *warmstart)
		os.Exit(2)
	}

	opts := experiments.Options{Parallelism: *workers, CollectStats: *statsFlag, DisableWarmStart: !warm}
	switch strings.ToLower(*scheduler) {
	case "ims":
		opts.Scheduler = pipeline.IMS
	case "sms":
		opts.Scheduler = pipeline.SMS
	default:
		fmt.Fprintf(os.Stderr, "clusterbench: unknown scheduler %q (want ims or sms)\n", *scheduler)
		os.Exit(2)
	}
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		opts.Observer = obs.NewJSON(w)
	}

	if *serverURL != "" {
		if err := serverReplay(ctx, *serverURL, loops, strings.ToLower(*scheduler)); err != nil {
			fatal(err)
		}
		return
	}

	if *fleetURL != "" {
		if err := fleetReplay(ctx, *fleetURL, loops, strings.ToLower(*scheduler), *benchreps, *basetol, setFlags["basetol"]); err != nil {
			fatal(err)
		}
		return
	}

	if *benchjson {
		if err := benchJSON(ctx, loops, opts, *workers, warm, *benchreps, *spec); err != nil {
			fatal(err)
		}
		return
	}

	if *assignjson {
		if err := assignJSON(ctx, loops); err != nil {
			fatal(err)
		}
		return
	}

	if *compilejson {
		if err := compileJSON(ctx, *benchreps); err != nil {
			fatal(err)
		}
		return
	}

	if *trend {
		if err := trendRun(ctx, loops, opts.Scheduler, *workers, warm, *benchreps, *trendsha); err != nil {
			fatal(err)
		}
		return
	}

	if *baseline {
		if err := baselineRun(ctx, loops, opts.Scheduler, *benchreps, *basetol); err != nil {
			fatal(err)
		}
		return
	}

	if *markdown {
		if err := report.Markdown(os.Stdout, loops, report.Options{Run: opts, Extensions: *ext}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *livermore {
		kernels, err := livermorepkg.Kernels()
		if err != nil {
			fatal(err)
		}
		rep, err := experiments.LivermoreStudyContext(ctx, kernels, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Report())
		return
	}

	if *registers {
		study, err := experiments.RegisterStudyContext(ctx, loops, opts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(study.CSV())
		} else {
			fmt.Print(study.Report())
		}
		return
	}

	if *exp == "baseline" {
		res, err := experiments.BaselineComparisonContext(ctx, loops, opts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Report())
		}
		return
	}
	configs := experiments.All()
	if *ext {
		configs = experiments.Extensions()
	}
	if *exp != "" {
		cfg, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "clusterbench: unknown experiment %q (or 'baseline')\n", *exp)
			os.Exit(2)
		}
		configs = []experiments.Config{cfg}
	}
	// Lint every machine the selected experiments will run before
	// starting: a broken configuration fails fast with diagnostics
	// here instead of mid-run pipeline errors on every loop.
	var machineDiags []diag.Diagnostic
	for _, cfg := range configs {
		for _, row := range cfg.Rows {
			machineDiags = append(machineDiags, lint.Machine(row.Machine)...)
		}
	}
	if diag.CountErrors(machineDiags) > 0 {
		diag.Text(os.Stderr, machineDiags)
		os.Exit(1)
	}
	for _, cfg := range configs {
		var (
			res experiments.Result
			err error
		)
		if cfg.ID == "abl-order" {
			// The ordering ablation needs ID-shuffled loops; see the
			// RunOrderingAblation documentation.
			res, err = experiments.RunOrderingAblationContext(ctx, loops, opts)
		} else {
			res, err = experiments.RunContext(ctx, cfg, loops, opts)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Report())
			if opts.CollectStats || opts.Observer != nil {
				for _, row := range res.Rows {
					fmt.Printf("  stats %-30s %s\n", row.Label, row.Stats.String())
				}
				fmt.Println()
			}
		}
		if err != nil {
			fatal(err)
		}
	}
}

// benchJSON times the full pipeline — HeuristicIterative assignment
// plus modulo scheduling — over the synthetic suite on the paper's
// 2-cluster GP machine and emits one JSON object with ns/op and the
// aggregated search-effort statistics. The suite runs through
// pipeline.RunBatch: per-worker reusable sessions with warm-started II
// search (unless -warmstart=off), sharded over -workers goroutines.
// ns_per_op is wall-clock over scheduled loops, so -workers raises
// throughput directly; -workers 1 isolates the session/warm-start
// savings alone. The suite runs -benchreps times and ns_per_op reports
// the fastest pass: on a shared host a single pass is hostage to
// whatever else holds the CPU, and the minimum is the standard
// least-interfered estimate (outcomes and counters are deterministic,
// so repetition changes timing only). scripts/bench.sh redirects this
// into BENCH_pipeline.json.
//
// spec > 0 adds a "speculative" section: the same suite measured with
// batch sharding off (one worker) and SpeculativeWorkers=spec, so the
// II window's candidates probe in parallel inside each loop. The
// speculative pass's counters (ii_speculative_wins/_wasted) come from
// paths the main pass never takes, and every loop's II is asserted
// identical to the main pass — speculation is a latency optimization,
// never a search change.
func benchJSON(ctx context.Context, loops []*ddg.Graph, opts experiments.Options, workers int, warm bool, reps, spec int) error {
	m := m2c()
	popts := pipeline.Options{
		Assign:           assign.Options{Variant: assign.HeuristicIterative},
		Scheduler:        opts.Scheduler,
		Observer:         opts.Observer,
		CollectStats:     true,
		DisableWarmStart: !warm,
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reps < 1 {
		reps = 1
	}
	var (
		results []pipeline.BatchResult
		elapsed time.Duration
		allocs  uint64
		bytes   uint64
	)
	for r := 0; r < reps; r++ {
		m0, b0 := memCounters()
		start := time.Now()
		results = pipeline.RunBatch(ctx, loops, m, popts, workers)
		d := time.Since(start)
		m1, b1 := memCounters()
		if r == 0 || d < elapsed {
			elapsed = d
		}
		if r == 0 || m1-m0 < allocs {
			allocs = m1 - m0
		}
		if r == 0 || b1-b0 < bytes {
			bytes = b1 - b0
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	var agg obs.Stats
	scheduled := 0
	for _, r := range results {
		if r.Err != nil || r.Outcome == nil {
			continue
		}
		agg.Add(r.Outcome.Stats)
		scheduled++
	}
	type specSummary struct {
		SpecWorkers int       `json:"spec_workers"`
		Scheduled   int       `json:"scheduled"`
		TotalNS     int64     `json:"total_ns"`
		NSPerOp     int64     `json:"ns_per_op"`
		Stats       obs.Stats `json:"stats"`
	}
	summary := struct {
		Name        string       `json:"name"`
		Machine     string       `json:"machine"`
		Loops       int          `json:"loops"`
		Scheduled   int          `json:"scheduled"`
		Workers     int          `json:"workers"`
		WarmStart   bool         `json:"warm_start"`
		Reps        int          `json:"reps"`
		TotalNS     int64        `json:"total_ns"`
		NSPerOp     int64        `json:"ns_per_op"`
		AllocsPerOp int64        `json:"allocs_per_op"`
		BytesPerOp  int64        `json:"bytes_per_op"`
		Stats       obs.Stats    `json:"stats"`
		Speculative *specSummary `json:"speculative,omitempty"`
	}{
		Name:      "pipeline_suite",
		Machine:   m.Name,
		Loops:     len(loops),
		Scheduled: scheduled,
		Workers:   workers,
		WarmStart: warm,
		Reps:      reps,
		TotalNS:   elapsed.Nanoseconds(),
		Stats:     agg,
	}
	if scheduled > 0 {
		summary.NSPerOp = elapsed.Nanoseconds() / int64(scheduled)
		summary.AllocsPerOp = int64(allocs) / int64(scheduled)
		summary.BytesPerOp = int64(bytes) / int64(scheduled)
	}

	if spec > 0 {
		sp := popts
		sp.SpeculativeWorkers = spec
		var specResults []pipeline.BatchResult
		var specElapsed time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			// One batch worker: speculation and batch sharding both
			// multiply goroutines, and this section isolates the former.
			specResults = pipeline.RunBatch(ctx, loops, m, sp, 1)
			d := time.Since(start)
			if r == 0 || d < specElapsed {
				specElapsed = d
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		var specAgg obs.Stats
		specScheduled := 0
		for i, r := range specResults {
			base := results[i]
			switch {
			case (r.Err == nil) != (base.Err == nil):
				return fmt.Errorf("benchjson: loop %d outcome differs under speculation (spec err %v, base err %v)", i, r.Err, base.Err)
			case r.Err == nil && r.Outcome.II != base.Outcome.II:
				return fmt.Errorf("benchjson: loop %d II %d under speculation, %d without — speculation must not change the search",
					i, r.Outcome.II, base.Outcome.II)
			}
			if r.Err != nil || r.Outcome == nil {
				continue
			}
			specAgg.Add(r.Outcome.Stats)
			specScheduled++
		}
		if specAgg.IISpeculativeWins+specAgg.IISpeculativeWasted == 0 {
			return fmt.Errorf("benchjson: speculative pass with %d workers recorded no speculative probes (wins=%d wasted=%d)",
				spec, specAgg.IISpeculativeWins, specAgg.IISpeculativeWasted)
		}
		ss := &specSummary{SpecWorkers: spec, Scheduled: specScheduled, TotalNS: specElapsed.Nanoseconds(), Stats: specAgg}
		if specScheduled > 0 {
			ss.NSPerOp = specElapsed.Nanoseconds() / int64(specScheduled)
		}
		summary.Speculative = ss
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}

// serverReplay drives a running clusterd with the synthetic suite:
// one cold pass (every loop a distinct request) and one identical
// cached pass, then emits a JSON summary with the throughput of each
// and the cache's view from /statsz. scripts/bench.sh redirects this
// into BENCH_server.json.
func serverReplay(ctx context.Context, baseURL string, loops []*ddg.Graph, scheduler string) error {
	c := client.New(baseURL, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("no clusterd at %s: %w", baseURL, err)
	}

	reqs := make([]server.ScheduleRequest, len(loops))
	for i, g := range loops {
		var buf strings.Builder
		if err := ddgio.Write(&buf, fmt.Sprintf("loop%d", i), g); err != nil {
			return err
		}
		reqs[i] = server.ScheduleRequest{DDG: buf.String(), Machine: "gp:2:2:1", Scheduler: scheduler}
	}

	pass := func() (elapsed time.Duration, hits, failed int, err error) {
		start := time.Now()
		for _, req := range reqs {
			if ctx.Err() != nil {
				return 0, 0, 0, ctx.Err()
			}
			_, cached, err := c.Schedule(ctx, req)
			switch {
			case err == nil && cached:
				hits++
			case err != nil:
				// Some synthetic loops exceed the II slack on a narrow
				// machine; those fail identically in both passes.
				failed++
			}
		}
		return time.Since(start), hits, failed, nil
	}

	coldNS, coldHits, coldFailed, err := pass()
	if err != nil {
		return err
	}
	cachedNS, cachedHits, cachedFailed, err := pass()
	if err != nil {
		return err
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}

	rps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(len(reqs)) / d.Seconds()
	}
	summary := struct {
		Name         string  `json:"name"`
		Server       string  `json:"server"`
		Machine      string  `json:"machine"`
		Loops        int     `json:"loops"`
		ColdNS       int64   `json:"cold_total_ns"`
		ColdRPS      float64 `json:"cold_rps"`
		ColdHits     int     `json:"cold_hits"`
		ColdFailed   int     `json:"cold_failed"`
		CachedNS     int64   `json:"cached_total_ns"`
		CachedRPS    float64 `json:"cached_rps"`
		CachedHits   int     `json:"cached_hits"`
		CachedFailed int     `json:"cached_failed"`
		Speedup      float64 `json:"speedup"`
		CacheHits    uint64  `json:"server_cache_hits"`
		CacheMisses  uint64  `json:"server_cache_misses"`
	}{
		Name:    "server_suite",
		Server:  baseURL,
		Machine: "gp:2:2:1",
		Loops:   len(reqs),
		ColdNS:  coldNS.Nanoseconds(), ColdRPS: rps(coldNS), ColdHits: coldHits, ColdFailed: coldFailed,
		CachedNS: cachedNS.Nanoseconds(), CachedRPS: rps(cachedNS), CachedHits: cachedHits, CachedFailed: cachedFailed,
		CacheHits: st.Cache.Hits, CacheMisses: st.Cache.Misses,
	}
	if cachedNS > 0 {
		summary.Speedup = float64(coldNS) / float64(cachedNS)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}

// assignJSON times cluster assignment alone — no modulo scheduling —
// over the synthetic suite at each loop's MII, on the machine shapes
// the assignment benchmarks cover (broadcast 2- and 4-cluster, the
// point-to-point grid). The per-machine rows include the incremental
// engine's work counters: assign_deltas / assign_full_derives is the
// measure of derive work saved. scripts/bench.sh redirects this into
// BENCH_assign.json.
func assignJSON(ctx context.Context, loops []*ddg.Graph) error {
	type row struct {
		Machine     string `json:"machine"`
		Loops       int    `json:"loops"`
		Assigned    int    `json:"assigned"`
		TotalNS     int64  `json:"total_ns"`
		NSPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
		Commits     int    `json:"assign_commits"`
		Evictions   int    `json:"evictions"`
		Deltas      int    `json:"assign_deltas"`
		FullDerives int    `json:"assign_full_derives"`
	}
	machines := assignMachines()
	summary := struct {
		Name string `json:"name"`
		Rows []row  `json:"rows"`
	}{Name: "assign_suite"}
	for _, m := range machines {
		iis := make([]int, len(loops))
		for i, g := range loops {
			iis[i] = mii.MII(g, m)
		}
		tr := obs.New(ctx, nil, true)
		assigned := 0
		m0, b0 := memCounters()
		start := time.Now()
		for i, g := range loops {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if _, ok := assign.Run(g, m, iis[i], assign.Options{
				Variant: assign.HeuristicIterative, Trace: tr,
			}); ok {
				assigned++
			}
		}
		elapsed := time.Since(start)
		m1, b1 := memCounters()
		r := row{
			Machine:     m.Name,
			Loops:       len(loops),
			Assigned:    assigned,
			TotalNS:     elapsed.Nanoseconds(),
			Commits:     tr.Stats.AssignCommits,
			Evictions:   tr.Stats.Evictions,
			Deltas:      tr.Stats.AssignDeltas,
			FullDerives: tr.Stats.AssignFullDerives,
		}
		if assigned > 0 {
			r.NSPerOp = elapsed.Nanoseconds() / int64(assigned)
			r.AllocsPerOp = int64(m1-m0) / int64(assigned)
			r.BytesPerOp = int64(b1-b0) / int64(assigned)
		}
		summary.Rows = append(summary.Rows, r)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}

// Profile teardown must also run on the fatal() paths, hence the
// explicit hook instead of relying on main's defer alone.
var (
	profileOnce sync.Once
	profileStop = func() {}
)

func startProfiles(cpu, mem string) error {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}
	profileStop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	return nil
}

func stopProfiles() { profileOnce.Do(profileStop) }

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
