// Clusterc is the end-to-end loop compiler: it reads loops in the
// small loop language, compiles them to dependence graphs, software-
// pipelines them onto a clustered machine, and prints the kernels.
//
// Usage:
//
//	clusterc kernels.loop
//	clusterc -machine fs:4:4:2 -pipeline kernels.loop
//	clusterc -trace - -timeout 500ms kernels.loop
//	echo 'loop dot { s = s + a[i]*b[i] }' | clusterc -
//
// The language: one index variable i, array accesses a[i+k] (loads and
// stores), scalars carrying values across statements (and across
// iterations when read before their definition — reductions), loop
// invariants free in registers, constants folded, sqrt() as the only
// intrinsic. See internal/frontend for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"clustersched"
	"clustersched/internal/cli"
	"clustersched/internal/diag"
	"clustersched/internal/lint"
)

func main() {
	var (
		machineSpec = flag.String("machine", "gp:2:2:1", "machine: gp:C:B:P, fs:C:B:P, grid:P, ring:C:P, or unified:W")
		pipelined   = flag.Bool("pipeline", false, "print prologue and epilogue, not just the kernel")
		stages      = flag.Bool("stages", false, "run stage scheduling before printing")
		verbose     = flag.Bool("v", false, "also print placement, register, and search-effort details")
		nolint      = flag.Bool("nolint", false, "skip the pre-compilation source lint (diagnostics still apply inside the pipeline)")
		trace       = flag.String("trace", "", "write a JSON-lines event stream of the schedule search to this file (- for stderr)")
		timeout     = flag.Duration("timeout", 0, "per-loop scheduling deadline (0 = none), e.g. 500ms")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clusterc [flags] <file.loop | ->")
		os.Exit(2)
	}

	var (
		src []byte
		err error
	)
	name := flag.Arg(0)
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "<stdin>"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fatal(err)
	}

	m, err := cli.ParseMachine(*machineSpec)
	if err != nil {
		fatal(err)
	}
	// Fail fast with full diagnostics — every finding, with stable
	// codes — instead of the compiler's first error. Warnings print
	// but do not block.
	if !*nolint {
		diags := lint.Source(name, string(src))
		diags = append(diags, lint.Machine(m)...)
		diag.Text(os.Stderr, diags)
		if diag.CountErrors(diags) > 0 {
			os.Exit(1)
		}
	}
	loops, err := clustersched.CompileSource(string(src))
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var schedOpts []clustersched.Option
	if *timeout > 0 {
		schedOpts = append(schedOpts, clustersched.WithTimeout(*timeout))
	}
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		schedOpts = append(schedOpts, clustersched.WithObserver(clustersched.NewJSONObserver(w)))
	}

	for _, l := range loops {
		fmt.Printf("=== %s (%d ops) on %s ===\n", l.Name, l.Graph.NumNodes(), m)
		res, err := clustersched.ScheduleContext(ctx, l.Graph, m, schedOpts...)
		if err != nil {
			if ctx.Err() != nil {
				fatal(fmt.Errorf("interrupted: %w", err))
			}
			fmt.Printf("  no schedule: %v\n\n", err)
			continue
		}
		if *stages {
			res.OptimizeStages()
		}
		if err := res.Validate(); err != nil {
			fatal(fmt.Errorf("internal error: invalid schedule: %w", err))
		}
		fmt.Printf("II=%d (MII=%d), %d copies, %d stages\n", res.II, res.MII, res.Copies, res.Stages())
		if *verbose {
			for n := 0; n < res.Annotated.NumNodes(); n++ {
				node := res.Annotated.Nodes[n]
				fmt.Printf("  n%-3d %-7s cluster %d  cycle %3d  %s\n",
					n, node.Kind, res.ClusterOf[n], res.CycleOf[n], node.Name)
			}
			alloc := res.Registers()
			fmt.Printf("registers per cluster %v (MVE factor %d)\n", alloc.RegsPerCluster, alloc.Factor)
			fmt.Printf("search: %s\n", res.Stats())
		}
		if *pipelined {
			fmt.Println(res.Pipelined())
		} else {
			fmt.Println(res.Kernel())
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
