// Clusterc is the end-to-end loop compiler: it reads loops in the
// small loop language, compiles them to dependence graphs, software-
// pipelines them onto a clustered machine, and prints the kernels.
//
// Usage:
//
//	clusterc kernels.loop
//	clusterc -machine fs:4:4:2 -pipeline kernels.loop
//	clusterc -trace - -timeout 500ms kernels.loop
//	clusterc -O -workers 4 kernels.loop
//	echo 'loop dot { s = s + a[i]*b[i] }' | clusterc -
//
// -O selects the whole-translation-unit compile path
// (internal/compile): the loops stream through lint → schedule →
// stagesched → regalloc → emit as a stage-parallel pipeline with
// -workers scheduling workers, and the kernels print in input order —
// stdout is byte-identical for every worker count. -v adds the
// per-stage time breakdown and aggregate search stats on stderr.
//
// The language: one index variable i, array accesses a[i+k] (loads and
// stores), scalars carrying values across statements (and across
// iterations when read before their definition — reductions), loop
// invariants free in registers, constants folded, sqrt() as the only
// intrinsic. See internal/frontend for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"clustersched"
	"clustersched/internal/assign"
	"clustersched/internal/cli"
	"clustersched/internal/compile"
	"clustersched/internal/diag"
	"clustersched/internal/lint"
	"clustersched/internal/obs"
	"clustersched/internal/pipeline"
)

func main() {
	var (
		machineSpec = flag.String("machine", "gp:2:2:1", "machine: gp:C:B:P, fs:C:B:P, grid:P, ring:C:P, or unified:W")
		pipelined   = flag.Bool("pipeline", false, "print prologue and epilogue, not just the kernel")
		stages      = flag.Bool("stages", false, "run stage scheduling before printing")
		verbose     = flag.Bool("v", false, "also print placement, register, and search-effort details")
		nolint      = flag.Bool("nolint", false, "skip the pre-compilation source lint (diagnostics still apply inside the pipeline)")
		trace       = flag.String("trace", "", "write a JSON-lines event stream of the schedule search to this file (- for stderr)")
		timeout     = flag.Duration("timeout", 0, "per-loop scheduling deadline (0 = none), e.g. 500ms")
		wholeTU     = flag.Bool("O", false, "whole-translation-unit mode: stream all loops through the stage-parallel compile pipeline")
		workers     = flag.Int("workers", 0, "scheduling workers for -O (0 = GOMAXPROCS); output is identical for every value")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clusterc [flags] <file.loop | ->")
		os.Exit(2)
	}

	var (
		src []byte
		err error
	)
	name := flag.Arg(0)
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "<stdin>"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fatal(err)
	}

	m, err := cli.ParseMachine(*machineSpec)
	if err != nil {
		fatal(err)
	}
	// Fail fast with full diagnostics — every finding, with stable
	// codes — instead of the compiler's first error. Warnings print
	// but do not block.
	if !*nolint {
		diags := lint.Source(name, string(src))
		diags = append(diags, lint.Machine(m)...)
		diag.Text(os.Stderr, diags)
		if diag.CountErrors(diags) > 0 {
			os.Exit(1)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *wholeTU {
		compileTU(ctx, string(src), m, tuConfig{
			workers: *workers, nolint: *nolint, stages: *stages,
			pipelined: *pipelined, verbose: *verbose,
			trace: *trace, timeout: *timeout,
		})
		return
	}

	loops, err := clustersched.CompileSource(string(src))
	if err != nil {
		fatal(err)
	}

	var schedOpts []clustersched.Option
	if *timeout > 0 {
		schedOpts = append(schedOpts, clustersched.WithTimeout(*timeout))
	}
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		schedOpts = append(schedOpts, clustersched.WithObserver(clustersched.NewJSONObserver(w)))
	}

	for _, l := range loops {
		fmt.Printf("=== %s (%d ops) on %s ===\n", l.Name, l.Graph.NumNodes(), m)
		res, err := clustersched.ScheduleContext(ctx, l.Graph, m, schedOpts...)
		if err != nil {
			if ctx.Err() != nil {
				fatal(fmt.Errorf("interrupted: %w", err))
			}
			fmt.Printf("  no schedule: %v\n\n", err)
			continue
		}
		if *stages {
			res.OptimizeStages()
		}
		if err := res.Validate(); err != nil {
			fatal(fmt.Errorf("internal error: invalid schedule: %w", err))
		}
		fmt.Printf("II=%d (MII=%d), %d copies, %d stages\n", res.II, res.MII, res.Copies, res.Stages())
		if *verbose {
			for n := 0; n < res.Annotated.NumNodes(); n++ {
				node := res.Annotated.Nodes[n]
				fmt.Printf("  n%-3d %-7s cluster %d  cycle %3d  %s\n",
					n, node.Kind, res.ClusterOf[n], res.CycleOf[n], node.Name)
			}
			alloc := res.Registers()
			fmt.Printf("registers per cluster %v (MVE factor %d)\n", alloc.RegsPerCluster, alloc.Factor)
			fmt.Printf("search: %s\n", res.Stats())
		}
		if *pipelined {
			fmt.Println(res.Pipelined())
		} else {
			fmt.Println(res.Kernel())
		}
		fmt.Println()
	}
}

// tuConfig carries the flags the whole-TU path consumes.
type tuConfig struct {
	workers   int
	nolint    bool
	stages    bool
	pipelined bool
	verbose   bool
	trace     string
	timeout   time.Duration
}

// compileTU is the -O path: the whole translation unit streams
// through internal/compile's stage-parallel pipeline. Kernels print
// to stdout in input order as they retire — byte-identical for every
// worker count — and the per-stage breakdown goes to stderr under -v.
func compileTU(ctx context.Context, src string, m *clustersched.Machine, cfg tuConfig) {
	opts := compile.Options{
		Pipeline: pipeline.Options{
			Assign:       assign.Options{Variant: assign.HeuristicIterative},
			CollectStats: true,
			Timeout:      cfg.timeout,
		},
		Workers:    cfg.workers,
		NoLint:     cfg.nolint,
		StageSched: cfg.stages,
		Pipelined:  cfg.pipelined,
	}
	if cfg.trace != "" {
		w := os.Stderr
		if cfg.trace != "-" {
			f, err := os.Create(cfg.trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		opts.Pipeline.Observer = obs.NewJSON(w)
		// A shared event stream from concurrent schedulers would
		// interleave; tracing serializes the schedule stage.
		if opts.Workers != 1 {
			fmt.Fprintln(os.Stderr, "clusterc: -trace forces -workers 1 (serialized event stream)")
			opts.Workers = 1
		}
	}
	opts.Emit = func(l *compile.LoopResult) {
		fmt.Printf("=== %s (%d ops) on %s ===\n", l.Name, l.Graph.NumNodes(), m)
		if l.Err != nil {
			fmt.Printf("  no schedule: %v\n\n", l.Err)
			return
		}
		fmt.Printf("II=%d (MII=%d), %d copies, %d stages\n",
			l.Outcome.II, l.Outcome.MII, l.Outcome.Assignment.Copies, l.Outcome.Schedule.StageCount())
		if cfg.verbose {
			fmt.Printf("registers per cluster %v (MVE factor %d)\n", l.Alloc.RegsPerCluster, l.Alloc.Factor)
		}
		fmt.Println(l.Text)
	}

	res, err := compile.Source(ctx, src, m, opts)
	if err != nil {
		if res == nil {
			fatal(err)
		}
		fatal(fmt.Errorf("interrupted: %w", err))
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "frontend: %d loops in %s\n", len(res.Loops), time.Duration(res.FrontendNS))
		for _, st := range res.Stages {
			fmt.Fprintf(os.Stderr, "stage %-10s %3d loops  %s\n", st.Stage, st.Loops, time.Duration(st.NS))
		}
		fmt.Fprintf(os.Stderr, "scheduled %d, failed %d\n", res.Scheduled, res.Failed)
		fmt.Fprintf(os.Stderr, "search: %s\n", res.Stats)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
