// Explore sweeps the clustered-VLIW design space: for each design it
// measures throughput against the equally wide unified machine over
// the loop suite and scores the register files with the paper's
// Section 1.1 cost models (area quadratic in ports, delay logarithmic
// in registers times read ports).
//
// Usage:
//
//	explore                 # unified vs clustered at widths 8 and 16
//	explore -count 300      # quicker, smaller suite
//	explore -clusters 6 -buses 6 -ports 3   # add a custom GP design
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"clustersched/internal/explore"
	"clustersched/internal/loopgen"
	"clustersched/internal/machine"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "loop suite seed")
		count    = flag.Int("count", 400, "number of loops to evaluate")
		clusters = flag.Int("clusters", 0, "additional GP design: cluster count (0 = none)")
		buses    = flag.Int("buses", 0, "additional design: bus count")
		ports    = flag.Int("ports", 0, "additional design: ports per cluster")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	loops := loopgen.Suite(loopgen.Options{Seed: *seed, Count: *count})
	designs := explore.DefaultDesigns()
	if *clusters > 0 {
		designs = append(designs, machine.NewBusedGP(*clusters, *buses, *ports))
	}
	points, err := explore.SweepContext(ctx, designs, loops, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(explore.Report(points))
	fmt.Println("\narea ~ sum(regs x ports^2) per file; delay ~ log2(regs x read ports)")
	fmt.Println("of the largest file (paper Section 1.1). Clustering holds match%")
	fmt.Println("while the widest unified register files blow up quadratically.")
}
