// Schedview schedules a single loop end to end and shows its cluster
// assignment, modulo reservation table, kernel, and software pipeline.
//
// Usage:
//
//	schedview -machine gp:2:2:1 loops.ddg      # schedule loops from a file
//	schedview -machine grid:2 -pipeline        # built-in demo loop, full pipeline
//	schedview -machine fs:4:4:2 -variant simple loops.ddg
//	schedview -machine gp:2:2:1 -json loops.ddg  # one JSON line per loop
//
// With -json each loop is printed as one JSON object in the same shape
// clusterd's /v1/schedule returns (name, machine, ii, mii, copies,
// stages, cluster_of, cycle_of, kernel, stats, diagnostics), so output
// can be piped into the same tooling either way.
//
// The machine spec is gp:<clusters>:<buses>:<ports>,
// fs:<clusters>:<buses>:<ports>, grid:<ports>, ring:<clusters>:<ports>,
// or unified:<width>. Loop files use the ddg text format:
//
//	loop dotproduct
//	node 0 load a[i]
//	node 1 load b[i]
//	node 2 fmul
//	node 3 fadd s
//	edge 0 2 0
//	edge 1 2 0
//	edge 2 3 0
//	edge 3 3 1
//	end
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"clustersched"
	"clustersched/internal/cli"
	"clustersched/internal/ddgio"
	"clustersched/internal/server"
)

func main() {
	var (
		machineSpec = flag.String("machine", "gp:2:2:1", "machine: gp:C:B:P, fs:C:B:P, grid:P, ring:C:P, or unified:W")
		variant     = flag.String("variant", "heuristic-iterative", "assignment: simple, simple-iterative, heuristic, heuristic-iterative")
		scheduler   = flag.String("scheduler", "ims", "phase-two scheduler: ims or sms")
		pipelined   = flag.Bool("pipeline", false, "print prologue and epilogue, not just the kernel")
		dotOut      = flag.Bool("dot", false, "print the scheduled loop as Graphviz DOT instead of text")
		stages      = flag.Bool("stages", false, "run stage scheduling before printing (reduces register pressure)")
		registers   = flag.Bool("registers", false, "print the MVE register allocation")
		unroll      = flag.Int("unroll", 1, "unroll the loop body by this factor before scheduling")
		gantt       = flag.Bool("gantt", false, "print the per-cluster occupancy timeline")
		jsonOut     = flag.Bool("json", false, "print each loop's result as one JSON line (the clusterd response shape)")
	)
	flag.Parse()

	m, err := cli.ParseMachine(*machineSpec)
	if err != nil {
		fatal(err)
	}
	v, err := cli.ParseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	s, err := cli.ParseScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}

	var loops []ddgio.NamedGraph
	if flag.NArg() == 0 {
		loops = []ddgio.NamedGraph{{Name: "demo-dotproduct", Graph: demoLoop()}}
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		loops, err = clustersched.ReadLoops(f)
		if err != nil {
			fatal(err)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, l := range loops {
		if !*jsonOut {
			fmt.Printf("=== %s on %s ===\n", l.Name, m)
		}
		if *unroll > 1 {
			l.Graph = l.Graph.Unroll(*unroll)
			if !*jsonOut {
				fmt.Printf("unrolled x%d: %d operations\n", *unroll, l.Graph.NumNodes())
			}
		}
		res, err := clustersched.Schedule(l.Graph, m,
			clustersched.WithVariant(v), clustersched.WithScheduler(s))
		if err != nil {
			if *jsonOut {
				enc.Encode(map[string]string{"name": l.Name, "machine": *machineSpec, "error": err.Error()})
			} else {
				fmt.Printf("  no schedule: %v\n\n", err)
			}
			continue
		}
		if err := res.Validate(); err != nil {
			fatal(fmt.Errorf("internal error: schedule failed validation: %w", err))
		}
		if *stages {
			moved := res.OptimizeStages()
			if !*jsonOut {
				fmt.Printf("stage scheduling moved %d operation(s)\n", moved)
			}
			if err := res.Validate(); err != nil {
				fatal(fmt.Errorf("internal error: invalid after stage scheduling: %w", err))
			}
		}
		if *jsonOut {
			if err := enc.Encode(server.ResponseFor(l.Name, *machineSpec, res)); err != nil {
				fatal(err)
			}
			continue
		}
		if *dotOut {
			fmt.Print(res.DOT())
			continue
		}
		fmt.Printf("II=%d (MII=%d), %d copies, %d stages\n", res.II, res.MII, res.Copies, res.Stages())
		for n := 0; n < res.Annotated.NumNodes(); n++ {
			node := res.Annotated.Nodes[n]
			fmt.Printf("  n%-3d %-7s cluster %d  cycle %3d  %s\n",
				n, node.Kind, res.ClusterOf[n], res.CycleOf[n], node.Name)
		}
		live, perCluster := res.MaxLive()
		fmt.Printf("register pressure (MaxLive): %d total, per cluster %v\n", live, perCluster)
		if *registers {
			alloc := res.Registers()
			fmt.Printf("MVE factor %d, registers per cluster %v (total %d)\n",
				alloc.Factor, alloc.RegsPerCluster, alloc.TotalRegisters())
		}
		if *pipelined {
			fmt.Println(res.Pipelined())
		} else {
			fmt.Println(res.Kernel())
		}
		if *gantt {
			fmt.Println(res.Gantt())
		}
		fmt.Println()
	}
}

// demoLoop is the dot-product kernel used when no file is given.
func demoLoop() *clustersched.Graph {
	g := clustersched.NewGraph()
	a := g.AddNode(clustersched.OpLoad, "a[i]")
	b := g.AddNode(clustersched.OpLoad, "b[i]")
	mul := g.AddNode(clustersched.OpFMul, "")
	acc := g.AddNode(clustersched.OpFAdd, "s")
	br := g.AddNode(clustersched.OpBranch, "loop")
	g.AddEdge(a, mul, 0)
	g.AddEdge(b, mul, 0)
	g.AddEdge(mul, acc, 0)
	g.AddEdge(acc, acc, 1)
	_ = br
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
