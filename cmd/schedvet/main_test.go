package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"clustersched/internal/diag"
)

// runVet drives the CLI exactly as main does, capturing the streams.
func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

const allocbadDir = "../../internal/schedvet/testdata/src/allocbad"

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, stderr := runVet(t, "../../internal/diag")
	if code != 0 {
		t.Fatalf("exit %d on internal/diag, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "no findings") {
		t.Errorf("stdout = %q, want the no-findings notice", out)
	}
}

func TestSeededFixtureTextMode(t *testing.T) {
	code, out, _ := runVet(t, allocbadDir)
	if code != 1 {
		t.Fatalf("exit %d on the seeded fixture, want 1\nstdout: %s", code, out)
	}
	for _, want := range []string{"VET010", "VET011", "VET012", "VET013", "VET014"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "internal/schedvet/testdata/src/allocbad/allocbad.go") {
		t.Errorf("stdout does not use module-relative paths:\n%s", out)
	}
}

// TestGoldenJSON pins the exact -json bytes for the seeded fixture:
// stable codes, stable module-relative paths, stable ordering. The
// golden file is regenerated with:
//
//	go run ./cmd/schedvet -json internal/schedvet/testdata/src/allocbad \
//	    > cmd/schedvet/testdata/allocbad.golden.json
func TestGoldenJSON(t *testing.T) {
	code, out, stderr := runVet(t, "-json", allocbadDir)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	want, err := os.ReadFile("testdata/allocbad.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-json output drifted from golden file\ngot:\n%s\nwant:\n%s", out, want)
	}
	var diags []diag.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	resorted := append([]diag.Diagnostic(nil), diags...)
	diag.Sort(resorted)
	for i := range diags {
		if diags[i] != resorted[i] {
			t.Fatalf("JSON findings not in canonical order at %d", i)
		}
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, "-bogus")
	if code != 2 {
		t.Fatalf("exit %d on unknown flag, want 2", code)
	}
	if !strings.Contains(stderr, "usage") && !strings.Contains(stderr, "flag") {
		t.Errorf("stderr = %q, want a usage message", stderr)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, "no/such/dir")
	if code != 2 {
		t.Fatalf("exit %d on a missing directory, want 2\nstderr: %s", code, stderr)
	}
}
