// Schedvet enforces the repository's determinism and zero-allocation
// contracts statically: it loads and type-checks the module with a
// stdlib-only source importer and runs the internal/schedvet passes
// (mapiter, nondet, allocfree, lockdiscipline) over the requested
// packages. Findings use the same coded-diagnostic surface as
// clusterlint; docs/ANALYSIS.md describes the passes and
// docs/DIAGNOSTICS.md catalogues the VET codes.
//
// Usage:
//
//	schedvet ./...                  # analyze the whole module
//	schedvet internal/assign        # analyze one package directory
//	schedvet -json ./...            # machine-readable output
//
// Exit status: 0 when no findings were reported, 1 when any finding
// was reported, 2 on usage, load, or type-check problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clustersched/internal/diag"
	"clustersched/internal/schedvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it analyzes the requested packages
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: schedvet [-json] [./...|package-dir...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := schedvet.NewModule(".")
	if err != nil {
		fmt.Fprintf(stderr, "schedvet: %v\n", err)
		return 2
	}
	var pkgs []*schedvet.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		var batch []*schedvet.Package
		if pat == "./..." || pat == "..." {
			batch, err = mod.LoadAll()
			if err != nil {
				fmt.Fprintf(stderr, "schedvet: %v\n", err)
				return 2
			}
		} else {
			abs, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintf(stderr, "schedvet: %v\n", err)
				return 2
			}
			pkg, err := mod.LoadDir(abs)
			if err != nil {
				fmt.Fprintf(stderr, "schedvet: %v\n", err)
				return 2
			}
			batch = []*schedvet.Package{pkg}
		}
		for _, pkg := range batch {
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				pkgs = append(pkgs, pkg)
			}
		}
	}

	// Surface type errors before analyzing: findings over a package
	// the checker only partially understood are not trustworthy.
	badTypes := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			fmt.Fprintf(stderr, "schedvet: %v\n", e)
			badTypes = true
		}
	}
	if badTypes {
		return 2
	}

	diags := schedvet.Check(mod, pkgs, schedvet.DefaultConfig())
	if *jsonOut {
		if err := diag.JSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "schedvet: %v\n", err)
			return 2
		}
	} else {
		diag.Text(stdout, diags)
		if len(diags) == 0 {
			fmt.Fprintln(stdout, "schedvet: no findings")
		}
	}
	return diag.ExitCode(diags, true)
}
