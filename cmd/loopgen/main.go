// Loopgen generates the synthetic loop suite and either prints its
// Table 1 statistics or dumps the loops in the ddg text format.
//
// Usage:
//
//	loopgen                    # print Table 1 statistics
//	loopgen -dump > suite.ddg  # write the whole suite as text
//	loopgen -seed 7 -count 50 -dump
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"clustersched/internal/ddgio"
	"clustersched/internal/loopgen"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "suite seed")
		count = flag.Int("count", loopgen.DefaultCount, "number of loops")
		dump  = flag.Bool("dump", false, "write the loops in ddg text format to stdout")
	)
	flag.Parse()

	loops := loopgen.Suite(loopgen.Options{Seed: *seed, Count: *count})
	if !*dump {
		fmt.Print(loopgen.Stats(loops).Table())
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := ddgio.WriteAll(w, loops); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
