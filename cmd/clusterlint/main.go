// Clusterlint is the static-analysis front door: it lints loop-language
// files, DDG text dumps, and machine configurations, reporting every
// finding as a structured diagnostic instead of stopping at the first
// error the way the compiler does.
//
// Usage:
//
//	clusterlint kernels.loop                 # lint loop source
//	clusterlint loops.ddg                    # lint a DDG text dump
//	clusterlint -machine gp:4:4:2 file.loop  # also lint a machine spec
//	clusterlint -machine builtin             # lint every built-in config
//	clusterlint -json file.loop              # machine-readable output
//	echo 'loop d { s = s + a[i] }' | clusterlint -
//
// Exit status: 0 when no findings block use of the input, 1 when any
// Error-severity finding was reported (or any Warning under -werror),
// 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clustersched/internal/cli"
	"clustersched/internal/ddgio"
	"clustersched/internal/diag"
	"clustersched/internal/experiments"
	"clustersched/internal/frontend"
	"clustersched/internal/lint"
	"clustersched/internal/machine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it lints every requested input and
// returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machineSpec = fs.String("machine", "", "comma-separated machine specs to lint (gp:C:B:P, fs:C:B:P, grid:P, ring:C:P, unified:W), or 'builtin' for every built-in configuration")
		jsonOut     = fs.Bool("json", false, "emit findings as a JSON array")
		werror      = fs.Bool("werror", false, "treat warnings as errors for the exit status")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: clusterlint [-machine spec[,spec...]|builtin] [-json] [-werror] [file.loop|file.ddg|-]...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 && *machineSpec == "" {
		fs.Usage()
		return 2
	}

	var diags []diag.Diagnostic
	for _, path := range fs.Args() {
		fileDiags, err := lintFile(path, stdin)
		if err != nil {
			fmt.Fprintf(stderr, "clusterlint: %v\n", err)
			return 2
		}
		diags = append(diags, fileDiags...)
	}
	if *machineSpec != "" {
		machineDiags, err := lintMachines(*machineSpec)
		if err != nil {
			fmt.Fprintf(stderr, "clusterlint: %v\n", err)
			return 2
		}
		diags = append(diags, machineDiags...)
	}

	diag.Sort(diags)
	if *jsonOut {
		if err := diag.JSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "clusterlint: %v\n", err)
			return 2
		}
	} else {
		diag.Text(stdout, diags)
		if len(diags) == 0 {
			fmt.Fprintln(stdout, "clusterlint: no findings")
		}
	}
	return diag.ExitCode(diags, *werror)
}

// lintFile dispatches one input file on its format: ".ddg" is the DDG
// text dump format, everything else (including stdin via "-") is loop
// source.
func lintFile(path string, stdin io.Reader) ([]diag.Diagnostic, error) {
	if strings.HasSuffix(path, ".ddg") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return lintDDG(path, f)
	}
	var (
		src []byte
		err error
	)
	if path == "-" {
		src, err = io.ReadAll(stdin)
		path = "<stdin>"
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return lintLoopSource(path, string(src)), nil
}

// lintLoopSource runs the AST lint and, when the source parses, the
// graph lint over every compiled loop.
func lintLoopSource(path, src string) []diag.Diagnostic {
	diags := lint.Source(path, src)
	if diag.CountErrors(diags) > 0 {
		return diags // does not parse; nothing to compile
	}
	loops, err := frontend.Compile(src)
	if err != nil {
		// Parsed but not compilable (e.g. an unschedulable recurrence
		// detected by graph validation).
		diags = append(diags, diag.Diagnostic{
			Code: lint.CodeParseError, Severity: diag.Error,
			File: path, Message: err.Error(),
		})
		return diags
	}
	for _, l := range loops {
		for _, d := range lint.Graph(l.Graph) {
			d.File = path
			if d.Subject == "" {
				d.Subject = "loop " + l.Name
			} else {
				d.Subject = "loop " + l.Name + ", " + d.Subject
			}
			diags = append(diags, d)
		}
	}
	return diags
}

// lintDDG lints every loop of a DDG text dump. The dump is read
// laxly: semantically broken graphs are analysed, not refused.
func lintDDG(path string, r io.Reader) ([]diag.Diagnostic, error) {
	loops, err := ddgio.ReadLax(r)
	if err != nil {
		return nil, err
	}
	var diags []diag.Diagnostic
	for _, l := range loops {
		for _, d := range lint.Graph(l.Graph) {
			d.File = path
			if d.Subject == "" {
				d.Subject = "loop " + l.Name
			} else {
				d.Subject = "loop " + l.Name + ", " + d.Subject
			}
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// lintMachines lints the comma-separated machine specs, or every
// built-in configuration for the special spec "builtin".
func lintMachines(spec string) ([]diag.Diagnostic, error) {
	var configs []*machine.Config
	if spec == "builtin" {
		configs = builtinMachines()
	} else {
		for _, s := range strings.Split(spec, ",") {
			m, err := cli.ParseMachine(strings.TrimSpace(s))
			if err != nil {
				return nil, err
			}
			configs = append(configs, m)
		}
	}
	var diags []diag.Diagnostic
	for _, m := range configs {
		for _, d := range lint.Machine(m) {
			if d.Subject == "" {
				d.Subject = m.Name
			}
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// builtinMachines gathers every machine configuration the repository
// ships: the canonical instances of each constructor family in
// internal/machine/configs.go, every machine of every experiment in
// internal/experiments, and each one's equally wide unified baseline.
func builtinMachines() []*machine.Config {
	var all []*machine.Config
	all = append(all,
		machine.NewBusedGP(2, 2, 1),
		machine.NewBusedGP(4, 4, 2),
		machine.NewBusedFS(2, 2, 1),
		machine.NewBusedFS(4, 4, 2),
		machine.NewGrid4(2),
		machine.NewRing(4, 2),
		machine.NewRing(6, 2),
		machine.NewRing(8, 2),
		machine.NewUnifiedGP(4),
		machine.NewUnifiedGP(8),
		machine.NewUnifiedGP(16),
	)
	for _, cfg := range append(experiments.All(), experiments.Extensions()...) {
		for _, row := range cfg.Rows {
			all = append(all, row.Machine)
		}
	}
	all = append(all, experiments.LivermoreMachines()...)

	seen := map[string]bool{}
	var out []*machine.Config
	for _, m := range all {
		if m == nil || seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		out = append(out, m)
		if u := m.Unified(); !seen[u.Name] {
			seen[u.Name] = true
			out = append(out, u)
		}
	}
	return out
}
