package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"clustersched/internal/diag"
)

// runLint drives the CLI exactly as main does, capturing the streams.
func runLint(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func TestKernelsLintClean(t *testing.T) {
	code, out, stderr := runLint(t, []string{"../../examples/kernels/kernels.loop"}, "")
	if code != 0 {
		t.Fatalf("exit %d on the shipped kernels, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "no findings") {
		t.Errorf("stdout = %q, want the no-findings notice", out)
	}
}

func TestZeroCycleFixtureTextMode(t *testing.T) {
	code, out, _ := runLint(t, []string{"testdata/zerocycle.ddg"}, "")
	if code != 1 {
		t.Fatalf("exit %d on a zero-distance cycle, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "DDG006") {
		t.Errorf("stdout %q does not carry the DDG006 code", out)
	}
	if !strings.Contains(out, "testdata/zerocycle.ddg") {
		t.Errorf("stdout %q does not name the input file", out)
	}
}

func TestZeroCycleFixtureJSONMode(t *testing.T) {
	code, out, _ := runLint(t, []string{"-json", "testdata/zerocycle.ddg"}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []diag.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	found := false
	for _, d := range diags {
		if d.Code == "DDG006" && d.Severity == diag.Error {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON findings %v missing an error-severity DDG006", diags)
	}
}

// TestGoldenJSON pins the exact -json bytes for the zero-cycle
// fixture: stable codes and stable ordering, so diagnostic output is
// itself deterministic. The golden file is regenerated with:
//
//	go run ./cmd/clusterlint -json testdata/zerocycle.ddg \
//	    > testdata/zerocycle.golden.json
func TestGoldenJSON(t *testing.T) {
	code, out, stderr := runLint(t, []string{"-json", "testdata/zerocycle.ddg"}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	want, err := os.ReadFile("testdata/zerocycle.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-json output drifted from golden file\ngot:\n%s\nwant:\n%s", out, want)
	}
	var diags []diag.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	resorted := append([]diag.Diagnostic(nil), diags...)
	diag.Sort(resorted)
	for i := range diags {
		if diags[i] != resorted[i] {
			t.Fatalf("JSON findings not in canonical order at %d", i)
		}
	}
}

func TestBuiltinMachinesClean(t *testing.T) {
	code, out, stderr := runLint(t, []string{"-machine", "builtin"}, "")
	if code != 0 {
		t.Fatalf("built-in machine configs do not lint clean (exit %d)\nstdout: %s\nstderr: %s", code, out, stderr)
	}
}

func TestStdinLoopSource(t *testing.T) {
	code, out, _ := runLint(t, []string{"-"}, "loop d {\n t = a[i]\n out[i] = b[i]\n}")
	if code != 0 {
		t.Fatalf("exit %d for warning-only input, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "LOOP002") || !strings.Contains(out, "<stdin>") {
		t.Errorf("stdout %q: want a LOOP002 warning located in <stdin>", out)
	}
}

func TestWerrorPromotesWarnings(t *testing.T) {
	code, _, _ := runLint(t, []string{"-werror", "-"}, "loop d {\n t = a[i]\n out[i] = b[i]\n}")
	if code != 1 {
		t.Errorf("exit %d with -werror on a warning, want 1", code)
	}
}

func TestParseErrorExitsOne(t *testing.T) {
	code, out, _ := runLint(t, []string{"-"}, "loop {")
	if code != 1 {
		t.Fatalf("exit %d on unparsable source, want 1", code)
	}
	if !strings.Contains(out, "LOOP001") {
		t.Errorf("stdout %q missing LOOP001", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, nil, ""); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code, _, _ := runLint(t, []string{"no/such/file.loop"}, ""); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code, _, _ := runLint(t, []string{"-machine", "bogus:spec"}, ""); code != 2 {
		t.Errorf("bad machine spec: exit %d, want 2", code)
	}
}

func TestExplicitMachineSpecLints(t *testing.T) {
	code, out, _ := runLint(t, []string{"-machine", "gp:2:2:1,unified:8"}, "")
	if code != 0 {
		t.Errorf("exit %d for valid machine specs, want 0\n%s", code, out)
	}
}
